"""In-flight message record used by the discrete-event MPI simulator."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

#: Wildcard values mirroring ``MPI_ANY_SOURCE`` / ``MPI_ANY_TAG``.
ANY_SOURCE = -1
ANY_TAG = -1

_sequence = itertools.count()


@dataclass
class Message:
    """A message travelling between two simulated ranks.

    Attributes
    ----------
    source, dest:
        Global rank numbers.
    tag:
        User tag used for matching (non-negative).
    nbytes:
        Payload size in bytes; drives the network cost model.
    payload:
        The actual Python/numpy object transferred.  The simulator moves
        real data so that numeric application runs produce correct results.
    send_post_time:
        Virtual time at which the sender posted the send.
    arrival_time:
        Virtual time at which the payload is fully available at the
        receiver (set by the engine once the transfer is scheduled).
    seq:
        Monotonically increasing sequence number; guarantees deterministic
        FIFO matching for messages with identical (source, dest, tag).
    """

    source: int
    dest: int
    tag: int
    nbytes: float
    payload: Any = None
    send_post_time: float = 0.0
    arrival_time: float = 0.0
    seq: int = field(default_factory=lambda: next(_sequence))

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message satisfies a receive posted for (source, tag)."""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"Message(#{self.seq} {self.source}->{self.dest} tag={self.tag} "
                f"{self.nbytes:.0f}B posted={self.send_post_time:.6f})")
