"""Operating-system / background-load noise model.

The paper attributes the residual variance between its predictions and the
measured run times "largely to background processes, network load and minor
fluctuations in the actual run time of the application".  The simulated
cluster reproduces that effect so that the validation experiment is not a
tautology: compute blocks and message transfers are perturbed by a small
multiplicative jitter plus occasional longer daemon interruptions.

All randomness is seeded; the same seed reproduces the same "measured" run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np


def derive_seed(*components: object) -> int:
    """Derive a stable 32-bit seed from arbitrary hashable components.

    Used to give every scenario of a simulation sweep its own reproducible
    noise stream: the seed depends only on the scenario's identity (machine
    base seed, processor array, deck shape, ...), never on the worker that
    happens to evaluate it, so ``workers=1`` and ``workers=N`` runs are
    bit-identical.  The hash is ``zlib.crc32`` over the ``repr`` of the
    components — stable across processes and Python invocations (unlike
    ``hash()``, which is salted for strings).
    """
    text = "\x1f".join(repr(component) for component in components)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class NoiseModel:
    """Stochastic perturbation of compute and communication durations.

    Parameters
    ----------
    seed:
        Seed for the private random generator.
    compute_jitter:
        Standard deviation of the log-normal multiplicative jitter applied
        to compute durations (e.g. 0.01 = ~1 % noise).
    network_jitter:
        Same, for message wire times.
    daemon_interval:
        Mean virtual-time interval between background daemon interruptions
        on a rank, in seconds.  ``0`` disables daemon noise.
    daemon_duration:
        Mean duration of one interruption, in seconds.
    """

    seed: int = 0
    compute_jitter: float = 0.008
    network_jitter: float = 0.02
    daemon_interval: float = 0.25
    daemon_duration: float = 200e-6

    def __post_init__(self) -> None:
        for attr in ("compute_jitter", "network_jitter", "daemon_interval",
                     "daemon_duration"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Reset the generator; used to make per-experiment runs independent."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reseeded(self, seed: int) -> "NoiseModel":
        """A copy of this model with a fresh generator seeded at ``seed``.

        Simulation plans thread one of these per scenario so that every grid
        point sees an independent, reproducible noise stream regardless of
        evaluation order or multiprocessing fan-out.
        """
        return replace(self, seed=seed)

    def perturb_compute(self, duration: float) -> float:
        """Return the noisy duration of a compute block of ``duration`` seconds."""
        if duration <= 0:
            return duration
        noisy = duration
        if self.compute_jitter > 0:
            noisy *= float(self._rng.lognormal(mean=0.0, sigma=self.compute_jitter))
        if self.daemon_interval > 0 and self.daemon_duration > 0:
            # Expected number of interruptions while this block runs.
            expected = duration / self.daemon_interval
            hits = self._rng.poisson(expected)
            if hits:
                noisy += float(self._rng.exponential(self.daemon_duration, size=hits).sum())
        return noisy

    def perturb_network(self, duration: float) -> float:
        """Return the noisy wire time of a message transfer."""
        if duration <= 0 or self.network_jitter <= 0:
            return duration
        return duration * float(self._rng.lognormal(mean=0.0, sigma=self.network_jitter))

    #: Draw-site kinds accepted by :meth:`perturb_batch`.
    COMPUTE = 1
    NETWORK = 2

    def perturb_batch(self, durations: np.ndarray,
                      kinds: np.ndarray) -> np.ndarray:
        """Perturb a mixed sequence of compute/network durations at once.

        ``kinds[i]`` says which scalar method governs ``durations[i]``
        (:attr:`COMPUTE` -> :meth:`perturb_compute`, :attr:`NETWORK` ->
        :meth:`perturb_network`).  The result is **bit-identical** to
        calling those scalar methods element by element in order — the
        same values drawn from the same generator stream — which is what
        trace replay (:mod:`repro.simmpi.trace`) relies on to reproduce a
        :class:`~repro.simmpi.engine.ClusterEngine` run exactly.

        When daemon noise is off, every stream-consuming draw is exactly
        one log-normal factor, and numpy's ``Generator`` draws arrays with
        per-element parameters sequentially from the same stream as the
        scalar calls, so the whole batch is a single vectorised draw.
        Daemon noise makes the number of draws per element data-dependent
        (a Poisson count gates the exponential tail), so that case falls
        back to the scalar loop.
        """
        out = np.array(durations, dtype=float)
        kinds = np.asarray(kinds)
        if out.shape != kinds.shape:
            raise ValueError("durations and kinds must have the same length")
        if self.is_disabled() or out.size == 0:
            return out
        if self.daemon_interval > 0 and self.daemon_duration > 0:
            flat = out.reshape(-1)
            flat_kinds = kinds.reshape(-1)
            for index in range(flat.size):
                if flat_kinds[index] == self.COMPUTE:
                    flat[index] = self.perturb_compute(float(flat[index]))
                else:
                    flat[index] = self.perturb_network(float(flat[index]))
            return out
        sigma = np.where(kinds == self.COMPUTE,
                         self.compute_jitter, self.network_jitter)
        consuming = (out > 0) & (sigma > 0)
        if consuming.any():
            factors = self._rng.lognormal(mean=0.0, sigma=sigma[consuming])
            out[consuming] = out[consuming] * factors
        return out

    @classmethod
    def disabled(cls) -> "NoiseModel":
        """A noise model that never perturbs anything (deterministic runs)."""
        return cls(seed=0, compute_jitter=0.0, network_jitter=0.0,
                   daemon_interval=0.0, daemon_duration=0.0)

    def is_disabled(self) -> bool:
        return (self.compute_jitter == 0.0 and self.network_jitter == 0.0
                and (self.daemon_interval == 0.0 or self.daemon_duration == 0.0))
