"""Operating-system / background-load noise model.

The paper attributes the residual variance between its predictions and the
measured run times "largely to background processes, network load and minor
fluctuations in the actual run time of the application".  The simulated
cluster reproduces that effect so that the validation experiment is not a
tautology: compute blocks and message transfers are perturbed by a small
multiplicative jitter plus occasional longer daemon interruptions.

All randomness is seeded; the same seed reproduces the same "measured" run.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace

import numpy as np


def derive_seed(*components: object) -> int:
    """Derive a stable 32-bit seed from arbitrary hashable components.

    Used to give every scenario of a simulation sweep its own reproducible
    noise stream: the seed depends only on the scenario's identity (machine
    base seed, processor array, deck shape, ...), never on the worker that
    happens to evaluate it, so ``workers=1`` and ``workers=N`` runs are
    bit-identical.  The hash is ``zlib.crc32`` over the ``repr`` of the
    components — stable across processes and Python invocations (unlike
    ``hash()``, which is salted for strings).
    """
    text = "\x1f".join(repr(component) for component in components)
    return zlib.crc32(text.encode("utf-8")) & 0x7FFFFFFF


@dataclass
class NoiseModel:
    """Stochastic perturbation of compute and communication durations.

    Parameters
    ----------
    seed:
        Seed for the private random generator.
    compute_jitter:
        Standard deviation of the log-normal multiplicative jitter applied
        to compute durations (e.g. 0.01 = ~1 % noise).
    network_jitter:
        Same, for message wire times.
    daemon_interval:
        Mean virtual-time interval between background daemon interruptions
        on a rank, in seconds.  ``0`` disables daemon noise.
    daemon_duration:
        Mean duration of one interruption, in seconds.
    """

    seed: int = 0
    compute_jitter: float = 0.008
    network_jitter: float = 0.02
    daemon_interval: float = 0.25
    daemon_duration: float = 200e-6

    def __post_init__(self) -> None:
        for attr in ("compute_jitter", "network_jitter", "daemon_interval",
                     "daemon_duration"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------

    def reseed(self, seed: int) -> None:
        """Reset the generator; used to make per-experiment runs independent."""
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reseeded(self, seed: int) -> "NoiseModel":
        """A copy of this model with a fresh generator seeded at ``seed``.

        Simulation plans thread one of these per scenario so that every grid
        point sees an independent, reproducible noise stream regardless of
        evaluation order or multiprocessing fan-out.
        """
        return replace(self, seed=seed)

    def perturb_compute(self, duration: float) -> float:
        """Return the noisy duration of a compute block of ``duration`` seconds."""
        if duration <= 0:
            return duration
        noisy = duration
        if self.compute_jitter > 0:
            noisy *= float(self._rng.lognormal(mean=0.0, sigma=self.compute_jitter))
        if self.daemon_interval > 0 and self.daemon_duration > 0:
            # Expected number of interruptions while this block runs.
            expected = duration / self.daemon_interval
            hits = self._rng.poisson(expected)
            if hits:
                noisy += float(self._rng.exponential(self.daemon_duration, size=hits).sum())
        return noisy

    def perturb_network(self, duration: float) -> float:
        """Return the noisy wire time of a message transfer."""
        if duration <= 0 or self.network_jitter <= 0:
            return duration
        return duration * float(self._rng.lognormal(mean=0.0, sigma=self.network_jitter))

    #: Draw-site kinds accepted by :meth:`perturb_batch`.
    COMPUTE = 1
    NETWORK = 2

    def perturb_batch(self, durations: np.ndarray,
                      kinds: np.ndarray) -> np.ndarray:
        """Perturb a mixed sequence of compute/network durations at once.

        ``kinds[i]`` says which scalar method governs ``durations[i]``
        (:attr:`COMPUTE` -> :meth:`perturb_compute`, :attr:`NETWORK` ->
        :meth:`perturb_network`).  The result is **bit-identical** to
        calling those scalar methods element by element in order — the
        same values drawn from the same generator stream — which is what
        trace replay (:mod:`repro.simmpi.trace`) relies on to reproduce a
        :class:`~repro.simmpi.engine.ClusterEngine` run exactly.

        When daemon noise is off, every stream-consuming draw is exactly
        one log-normal factor, and numpy's ``Generator`` draws arrays with
        per-element parameters sequentially from the same stream as the
        scalar calls, so the whole batch is a single vectorised draw.
        Daemon noise makes the number of draws per element data-dependent
        (a Poisson count gates the exponential tail), so that case runs
        the stream kernel (:meth:`_perturb_stream`), which batches the
        network draws between compute sites.
        """
        out = np.array(durations, dtype=float)
        kinds = np.asarray(kinds)
        if out.shape != kinds.shape:
            raise ValueError("durations and kinds must have the same length")
        if self.is_disabled() or out.size == 0:
            return out
        if self.daemon_interval > 0 and self.daemon_duration > 0:
            self._perturb_stream(out.reshape(-1), kinds.reshape(-1),
                                 self._rng)
            return out
        sigma = np.where(kinds == self.COMPUTE,
                         self.compute_jitter, self.network_jitter)
        consuming = (out > 0) & (sigma > 0)
        if consuming.any():
            factors = self._rng.lognormal(mean=0.0, sigma=sigma[consuming])
            out[consuming] = out[consuming] * factors
        return out

    def _perturb_stream(self, flat: np.ndarray, kinds: np.ndarray,
                        rng: np.random.Generator) -> None:
        """Perturb ``flat`` in place, daemon noise on, using ``rng``.

        Bit-identical to calling :meth:`perturb_compute` /
        :meth:`perturb_network` element by element against the same
        generator.  Compute sites are inherently serial (a Poisson count
        gates a variable-length exponential tail), but the network draws
        *between* two compute sites all share one scalar sigma, and a
        sized array draw consumes the generator stream exactly like the
        equivalent sequence of scalar calls — so each run is one
        vectorised log-normal draw instead of per-element calls.
        """
        compute_jitter = self.compute_jitter
        network_jitter = self.network_jitter
        interval = self.daemon_interval
        daemon_scale = self.daemon_duration
        lognormal = rng.lognormal
        poisson = rng.poisson
        exponential = rng.exponential

        def network_run(start: int, stop: int) -> None:
            if network_jitter <= 0 or stop <= start:
                return
            segment = flat[start:stop]
            consuming = segment > 0
            count = int(consuming.sum())
            if count == 0:
                return
            factors = lognormal(mean=0.0, sigma=network_jitter, size=count)
            segment[consuming] = segment[consuming] * factors

        cursor = 0
        for position in np.flatnonzero(kinds == self.COMPUTE):
            position = int(position)
            network_run(cursor, position)
            duration = float(flat[position])
            if duration > 0:
                noisy = duration
                if compute_jitter > 0:
                    noisy *= float(lognormal(mean=0.0, sigma=compute_jitter))
                hits = poisson(duration / interval)
                if hits:
                    noisy += float(exponential(daemon_scale, size=hits).sum())
                flat[position] = noisy
            cursor = position + 1
        network_run(cursor, flat.size)

    def perturb_batch_multi(self, durations: np.ndarray, kinds: np.ndarray,
                            seeds) -> np.ndarray:
        """Perturb one duration vector under many independent seeds at once.

        Returns an ``(S, n)`` matrix whose row ``s`` is **bit-identical**
        to ``self.reseeded(seeds[s]).perturb_batch(durations, kinds)`` —
        each seed gets its own freshly seeded generator drawing the exact
        stream the single-seed path would, so a batched multi-sample
        replay reproduces ``S`` sequential single-seed replays sample for
        sample.  With daemon noise off, the (shared) consuming mask and
        sigma vector are computed once and each sample costs one
        vectorised log-normal draw; with daemon noise on, each sample
        runs the vectorised daemon stream kernel.
        """
        base = np.asarray(durations, dtype=float).reshape(-1)
        kinds = np.asarray(kinds).reshape(-1)
        if base.shape != kinds.shape:
            raise ValueError("durations and kinds must have the same length")
        seeds = [int(seed) for seed in seeds]
        out = np.empty((len(seeds), base.size))
        out[:] = base
        if self.is_disabled() or base.size == 0 or not seeds:
            return out
        if self.daemon_interval > 0 and self.daemon_duration > 0:
            for row, seed in zip(out, seeds):
                self._perturb_stream(row, kinds, np.random.default_rng(seed))
            return out
        sigma = np.where(kinds == self.COMPUTE,
                         self.compute_jitter, self.network_jitter)
        consuming = (base > 0) & (sigma > 0)
        if consuming.all():
            # Common case (every site draws): skip the mask gather/scatter.
            for row, seed in zip(out, seeds):
                rng = np.random.default_rng(seed)
                factors = rng.lognormal(mean=0.0, sigma=sigma)
                np.multiply(row, factors, out=row)
        elif consuming.any():
            sig = sigma[consuming]
            for row, seed in zip(out, seeds):
                rng = np.random.default_rng(seed)
                factors = rng.lognormal(mean=0.0, sigma=sig)
                row[consuming] = row[consuming] * factors
        return out

    @classmethod
    def disabled(cls) -> "NoiseModel":
        """A noise model that never perturbs anything (deterministic runs)."""
        return cls(seed=0, compute_jitter=0.0, network_jitter=0.0,
                   daemon_interval=0.0, daemon_duration=0.0)

    def is_disabled(self) -> bool:
        return (self.compute_jitter == 0.0 and self.network_jitter == 0.0
                and (self.daemon_interval == 0.0 or self.daemon_duration == 0.0))
