"""Interconnect presets for the machines of the paper.

Latency/bandwidth values are representative published figures for the
interconnect generations used in the paper's clusters:

* **Myrinet 2000** (Pentium-3 cluster, and the hypothetical machine of the
  speculative study): ~7-9 us MPI latency, ~240 MB/s sustained bandwidth.
* **Gigabit Ethernet** (Opteron cluster): ~45-60 us MPI/TCP latency,
  ~100 MB/s bandwidth.
* **SGI NUMAlink-4** (Altix 56-way SMP): ~1.5 us MPI latency over shared
  memory / NUMAlink, ~1.2 GB/s per-pair bandwidth.
* **Intra-node shared memory** of the 2-way SMP nodes: ~1 us latency,
  several hundred MB/s copy bandwidth (chipset-limited on the Pentium-3).
"""

from __future__ import annotations

from typing import Callable

from repro import units
from repro.simnet.link import LinkModel
from repro.simnet.topology import ClusterTopology


# ---------------------------------------------------------------------------
# Links
# ---------------------------------------------------------------------------


def myrinet2000_link() -> LinkModel:
    """Myrinet 2000 with GM-era MPICH-GM parameters."""
    return LinkModel(
        name="Myrinet 2000",
        latency=units.usec(8.0),
        bandwidth=units.mbytes_per_s(240.0),
        eager_threshold=16 * 1024,
        eager_bandwidth=units.mbytes_per_s(170.0),
        rendezvous_latency=units.usec(10.0),
        send_overhead=units.usec(1.2),
        recv_overhead=units.usec(1.5),
        per_byte_cpu=0.25e-9,
    )


def gigabit_ethernet_link() -> LinkModel:
    """Gigabit Ethernet with TCP-based MPICH parameters."""
    return LinkModel(
        name="Gigabit Ethernet",
        latency=units.usec(48.0),
        bandwidth=units.mbytes_per_s(105.0),
        eager_threshold=64 * 1024,
        eager_bandwidth=units.mbytes_per_s(90.0),
        rendezvous_latency=units.usec(55.0),
        send_overhead=units.usec(6.0),
        recv_overhead=units.usec(8.0),
        per_byte_cpu=1.0e-9,
    )


def numalink4_link() -> LinkModel:
    """SGI NUMAlink-4 / shared-memory MPI inside the Altix."""
    return LinkModel(
        name="SGI NUMAlink 4",
        latency=units.usec(1.6),
        bandwidth=units.mbytes_per_s(1200.0),
        eager_threshold=32 * 1024,
        eager_bandwidth=units.mbytes_per_s(850.0),
        rendezvous_latency=units.usec(2.5),
        send_overhead=units.usec(0.5),
        recv_overhead=units.usec(0.6),
        per_byte_cpu=0.1e-9,
    )


def smp_shared_memory_link(copy_bandwidth_mb: float = 500.0) -> LinkModel:
    """Intra-node shared memory channel of a 2-way SMP node."""
    return LinkModel(
        name="SMP shared memory",
        latency=units.usec(1.0),
        bandwidth=units.mbytes_per_s(copy_bandwidth_mb),
        eager_threshold=32 * 1024,
        eager_bandwidth=units.mbytes_per_s(copy_bandwidth_mb * 0.8),
        rendezvous_latency=units.usec(1.0),
        send_overhead=units.usec(0.4),
        recv_overhead=units.usec(0.4),
        per_byte_cpu=0.3e-9,
    )


# Backwards-friendly aliases used by machine definitions.
myrinet2000 = myrinet2000_link
gigabit_ethernet = gigabit_ethernet_link
numalink4 = numalink4_link
smp_shared_memory = smp_shared_memory_link


# ---------------------------------------------------------------------------
# Topologies
# ---------------------------------------------------------------------------


def pentium3_cluster_topology() -> ClusterTopology:
    """64 dual-Pentium-3 nodes on Myrinet 2000 (128 processors)."""
    return ClusterTopology(
        name="Pentium-3 / Myrinet 2000 cluster",
        processors_per_node=2,
        inter_node=myrinet2000_link(),
        intra_node=smp_shared_memory_link(copy_bandwidth_mb=400.0),
        max_nodes=64,
    )


def opteron_cluster_topology() -> ClusterTopology:
    """16 dual-Opteron nodes on Gigabit Ethernet (32 processors)."""
    return ClusterTopology(
        name="Opteron / Gigabit Ethernet cluster",
        processors_per_node=2,
        inter_node=gigabit_ethernet_link(),
        intra_node=smp_shared_memory_link(copy_bandwidth_mb=900.0),
        max_nodes=16,
    )


def altix_topology() -> ClusterTopology:
    """Single 56-way SGI Altix node: every rank pair uses NUMAlink/shared memory."""
    return ClusterTopology(
        name="SGI Altix Itanium-2 56-way SMP",
        processors_per_node=56,
        inter_node=numalink4_link(),
        intra_node=numalink4_link(),
        max_nodes=1,
    )


def hypothetical_cluster_topology() -> ClusterTopology:
    """The speculative machine of Section 6: Opteron SMP nodes on Myrinet 2000.

    The paper swaps the Opteron cluster's Gigabit Ethernet for the Myrinet
    2000 communication model and scales the machine to 8000 processors.
    """
    return ClusterTopology(
        name="Hypothetical Opteron / Myrinet 2000 cluster",
        processors_per_node=2,
        inter_node=myrinet2000_link(),
        intra_node=smp_shared_memory_link(copy_bandwidth_mb=900.0),
        max_nodes=4096,
    )


#: Registry of interconnect presets keyed by short identifier.
INTERCONNECT_PRESETS: dict[str, Callable[[], LinkModel]] = {
    "myrinet2000": myrinet2000_link,
    "gige": gigabit_ethernet_link,
    "numalink4": numalink4_link,
    "smp": smp_shared_memory_link,
}


def interconnect_preset(name: str) -> LinkModel:
    """Instantiate an interconnect preset by short name."""
    try:
        factory = INTERCONNECT_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown interconnect preset {name!r}; available: "
            f"{sorted(INTERCONNECT_PRESETS)}") from None
    return factory()
