"""Cluster topology: mapping ranks onto SMP nodes and links.

The validation systems of the paper are 2-way SMP clusters (Pentium-3 and
Opteron) plus a single 56-way shared-memory Altix node.  Messages between
ranks on the same node travel over a (fast) shared-memory "link"; messages
between nodes travel over the cluster interconnect.  The topology object
resolves which link a given rank pair uses and assigns ranks to nodes in the
same block fashion as the usual MPI process managers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkConfigError
from repro.simnet.link import LinkModel


@dataclass(frozen=True)
class ClusterTopology:
    """Node layout and link selection for a simulated cluster.

    Parameters
    ----------
    name:
        Cluster label.
    processors_per_node:
        Number of processors (MPI ranks) hosted by each SMP node.
    inter_node:
        Link model used between ranks on different nodes.
    intra_node:
        Link model used between ranks on the same node.  If ``None`` the
        inter-node link is used for every pair (single-link machine).
    max_nodes:
        Optional physical node-count limit; ``rank_limit`` derives from it.
    """

    name: str
    processors_per_node: int
    inter_node: LinkModel
    intra_node: LinkModel | None = None
    max_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.processors_per_node < 1:
            raise NetworkConfigError("processors_per_node must be >= 1")
        if self.max_nodes is not None and self.max_nodes < 1:
            raise NetworkConfigError("max_nodes must be >= 1 when given")
        # Per-pair link resolution memo.  Link selection is a pure function
        # of the (frozen) topology, and the simulator resolves the same
        # neighbour pairs millions of times per run, so the lookup is cached.
        object.__setattr__(self, "_pair_cache", {})

    # ------------------------------------------------------------------

    @property
    def rank_limit(self) -> int | None:
        """Maximum number of ranks the physical machine can host (``None`` = unlimited)."""
        if self.max_nodes is None:
            return None
        return self.max_nodes * self.processors_per_node

    def node_of(self, rank: int) -> int:
        """SMP node index hosting ``rank`` (block assignment)."""
        if rank < 0:
            raise NetworkConfigError(f"invalid rank {rank}")
        return rank // self.processors_per_node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share an SMP node."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def link_for(self, source: int, dest: int) -> LinkModel:
        """The link model governing messages from ``source`` to ``dest`` (memoised)."""
        key = (source, dest)
        cached = self._pair_cache.get(key)
        if cached is None:
            cached = self._pair_cache[key] = self._resolve_link(source, dest)
        return cached

    def _resolve_link(self, source: int, dest: int) -> LinkModel:
        if source == dest:
            # Self messages cost only the local copy; model them with the
            # intra-node link (or the inter-node link if none is defined).
            return self.intra_node or self.inter_node
        if self.intra_node is not None and self.same_node(source, dest):
            return self.intra_node
        return self.inter_node

    def nodes_required(self, nranks: int) -> int:
        """Number of SMP nodes needed to host ``nranks`` ranks."""
        if nranks < 1:
            raise NetworkConfigError("nranks must be >= 1")
        return -(-nranks // self.processors_per_node)

    def validate_rank_count(self, nranks: int) -> None:
        """Raise :class:`NetworkConfigError` if the machine cannot host ``nranks``."""
        limit = self.rank_limit
        if limit is not None and nranks > limit:
            raise NetworkConfigError(
                f"{self.name} has only {limit} processors "
                f"({self.max_nodes} nodes x {self.processors_per_node}); "
                f"requested {nranks}")

    def describe(self) -> str:
        intra = self.intra_node.describe() if self.intra_node else "(inter-node link)"
        nodes = f", {self.max_nodes} nodes" if self.max_nodes else ""
        return (f"{self.name}: {self.processors_per_node} proc/node{nodes}; "
                f"inter={self.inter_node.describe()}; intra={intra}")


@dataclass
class LinkUsageStats:
    """Aggregate traffic statistics collected by the simulator (per topology)."""

    messages: int = 0
    bytes: float = 0.0
    intra_node_messages: int = 0
    inter_node_messages: int = 0
    by_tag: dict[int, int] = field(default_factory=dict)

    def record(self, topology: ClusterTopology, source: int, dest: int,
               nbytes: float, tag: int) -> None:
        """Record one message for reporting purposes."""
        self.messages += 1
        self.bytes += nbytes
        if topology.intra_node is not None and topology.same_node(source, dest):
            self.intra_node_messages += 1
        else:
            self.inter_node_messages += 1
        self.by_tag[tag] = self.by_tag.get(tag, 0) + 1
