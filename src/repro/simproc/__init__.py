"""Simulated commodity-processor cost models.

This package stands in for the *physical processors* of the clusters used in
the paper (Intel Pentium-3, AMD Opteron, Intel Itanium-2).  A
:class:`~repro.simproc.processor.ProcessorModel` combines

* per-opcode issue/latency cost tables (:mod:`repro.simproc.opcodes`),
* a multi-level memory hierarchy model (:mod:`repro.simproc.cache`),
* a superscalar/ILP throughput model and
* a compiler optimisation model (:mod:`repro.simproc.compiler`)

and can answer two very different questions about a serial kernel:

``execute_time(mix)``
    How long does this instruction mix *actually* take, accounting for
    multiple operation pipelines, on-the-fly optimisation and the memory
    hierarchy?  This is the behaviour PAPI profiling observes, and the basis
    of the paper's *coarse* benchmarking approach.

``legacy_opcode_time(mix)``
    What would the *original PACE* per-opcode micro-benchmark approach
    predict (summing isolated opcode latencies)?  On modern superscalar
    processors this badly over-estimates the run time — the effect the paper
    reports as prediction errors "as large as 50 %" — and is retained here to
    reproduce that ablation.
"""

from repro.simproc.opcodes import OpCategory, OperationMix, OpcodeCostTable
from repro.simproc.cache import CacheLevel, MemoryHierarchy
from repro.simproc.compiler import CompilerModel
from repro.simproc.processor import ProcessorModel, SuperscalarModel
from repro.simproc.presets import (
    pentium3_1400,
    opteron_2000,
    itanium2_1600,
    processor_preset,
    PROCESSOR_PRESETS,
)

__all__ = [
    "OpCategory",
    "OperationMix",
    "OpcodeCostTable",
    "CacheLevel",
    "MemoryHierarchy",
    "CompilerModel",
    "SuperscalarModel",
    "ProcessorModel",
    "pentium3_1400",
    "opteron_2000",
    "itanium2_1600",
    "processor_preset",
    "PROCESSOR_PRESETS",
]
