"""Memory hierarchy model.

The paper's key observation is that fine-grained opcode benchmarking ignores
"complex memory hierarchies"; the coarse achieved-flop-rate approach absorbs
those effects automatically.  To reproduce that effect the simulated
processors need a memory system whose cost *depends on the per-processor
working set*, so that the achieved MFLOPS rate measured for a 50x50x50
sub-domain differs from the one measured for 5x5x100 — exactly the
dependence the paper notes ("This rate changes according to the problem size
per processor and requires updating ...").

The model is deliberately simple: a stack of inclusive cache levels, each
described by a capacity and an access cost, with a capacity-based hit-rate
heuristic.  It captures the first-order effect (streaming kernels running
out of L1/L2/memory) without attempting cycle accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ProcessorConfigError


@dataclass(frozen=True)
class CacheLevel:
    """One level of the cache hierarchy.

    Parameters
    ----------
    name:
        Human readable label, e.g. ``"L1"``.
    capacity_bytes:
        Usable capacity of the level.
    access_cycles:
        Cost in CPU cycles of a hit in this level (load-to-use).
    line_bytes:
        Cache line size; spatial locality means only one miss is paid per
        line of consecutive data streamed.
    """

    name: str
    capacity_bytes: float
    access_cycles: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ProcessorConfigError(f"{self.name}: capacity must be positive")
        if self.access_cycles < 0:
            raise ProcessorConfigError(f"{self.name}: access cycles must be >= 0")
        if self.line_bytes <= 0:
            raise ProcessorConfigError(f"{self.name}: line size must be positive")


@dataclass(frozen=True)
class MemoryHierarchy:
    """A stack of cache levels backed by main memory.

    Parameters
    ----------
    levels:
        Cache levels ordered from closest (L1) to furthest from the core.
    memory_access_cycles:
        Cost in cycles of a main-memory access (for one cache line).
    streaming_factor:
        Fraction of a kernel's memory accesses that actually leave the
        registers and probe the hierarchy; compilers keep the hot scalars of
        a stencil/sweep kernel in registers so this is well below 1.
    """

    levels: tuple[CacheLevel, ...]
    memory_access_cycles: float
    streaming_factor: float = 0.35

    def __init__(self, levels: Sequence[CacheLevel], memory_access_cycles: float,
                 streaming_factor: float = 0.35):
        object.__setattr__(self, "levels", tuple(levels))
        object.__setattr__(self, "memory_access_cycles", float(memory_access_cycles))
        object.__setattr__(self, "streaming_factor", float(streaming_factor))
        if not self.levels:
            raise ProcessorConfigError("a memory hierarchy needs at least one cache level")
        if self.memory_access_cycles < 0:
            raise ProcessorConfigError("memory access cycles must be >= 0")
        if not 0.0 < self.streaming_factor <= 1.0:
            raise ProcessorConfigError("streaming_factor must be in (0, 1]")
        capacities = [level.capacity_bytes for level in self.levels]
        if capacities != sorted(capacities):
            raise ProcessorConfigError("cache levels must be ordered by increasing capacity")

    # ------------------------------------------------------------------

    def hit_fractions(self, working_set_bytes: float) -> list[tuple[str, float]]:
        """Fraction of probing accesses served by each level (and memory).

        A simple capacity model: a working set of size ``W`` streamed
        repeatedly through a level of capacity ``C`` hits with probability
        ``min(1, C / W)``; the remainder falls through to the next level.
        The returned list ends with a ``("memory", fraction)`` entry and the
        fractions sum to 1.
        """
        if working_set_bytes < 0:
            raise ProcessorConfigError("working set must be non-negative")
        remaining = 1.0
        fractions: list[tuple[str, float]] = []
        for level in self.levels:
            if working_set_bytes <= 0:
                served = remaining
            else:
                served = remaining * min(1.0, level.capacity_bytes / working_set_bytes)
            fractions.append((level.name, served))
            remaining -= served
            if remaining <= 1e-15:
                remaining = 0.0
                break
        fractions.append(("memory", remaining))
        return fractions

    def average_access_cycles(self, working_set_bytes: float,
                              element_bytes: int = 8) -> float:
        """Average cycles per *memory-touching operation* for a streamed working set.

        Accesses that miss all cache levels pay the main-memory cost, but
        spatial locality amortises that cost over ``line_bytes /
        element_bytes`` consecutive elements.
        """
        fractions = self.hit_fractions(working_set_bytes)
        last_level = self.levels[-1]
        elements_per_line = max(1.0, last_level.line_bytes / float(element_bytes))
        cycles = 0.0
        for (name, fraction), level in zip(fractions[:-1], self.levels):
            cycles += fraction * level.access_cycles
        memory_fraction = fractions[-1][1]
        cycles += memory_fraction * (self.memory_access_cycles / elements_per_line
                                     + last_level.access_cycles)
        return cycles

    def stall_cycles(self, memory_accesses: float, working_set_bytes: float,
                     element_bytes: int = 8) -> float:
        """Total stall cycles for ``memory_accesses`` operations on a working set.

        Only the ``streaming_factor`` fraction of accesses probe the
        hierarchy (the rest hit registers / store buffers), and the L1 hit
        cost is treated as already covered by the opcode throughput cost, so
        only the *excess* over the L1 cost is charged as stall time.
        """
        if memory_accesses <= 0:
            return 0.0
        average = self.average_access_cycles(working_set_bytes, element_bytes)
        l1_cost = self.levels[0].access_cycles
        excess = max(0.0, average - l1_cost)
        return memory_accesses * self.streaming_factor * excess

    def describe(self) -> str:
        """One-line human readable description of the hierarchy."""
        parts = [
            f"{level.name}={level.capacity_bytes / 1024:.0f}KiB@{level.access_cycles:g}cy"
            for level in self.levels
        ]
        parts.append(f"mem@{self.memory_access_cycles:g}cy")
        return " / ".join(parts)
