"""Compiler optimisation model.

The paper attributes a large share of the legacy model's error to "the
impact of applying modern optimising compilers" — instruction scheduling,
strength reduction and register allocation change the executed instruction
stream relative to what static source analysis sees.  The
:class:`CompilerModel` captures that as two multiplicative effects:

* a *scheduling gain* that reduces the throughput-bound cycle count of the
  achieved-rate path (the compiler overlaps independent operations and
  removes redundant loads), and
* an *operation elimination* factor that removes a fraction of the
  statically counted integer/branch/loop bookkeeping operations entirely.

The validation clusters in the paper all compile with ``-O1`` and the x87
floating point instruction set; the presets mirror those flags.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProcessorConfigError
from repro.simproc.opcodes import OpCategory, OperationMix


#: Per-optimisation-level default factors: (scheduling_gain, bookkeeping_eliminated)
_LEVEL_DEFAULTS = {
    "O0": (1.00, 0.00),
    "O1": (0.80, 0.35),
    "O2": (0.70, 0.50),
    "O3": (0.62, 0.60),
}


@dataclass(frozen=True)
class CompilerModel:
    """Model of the optimising compiler used to build the serial kernel.

    Parameters
    ----------
    name:
        Compiler identification string (e.g. ``"gcc-2.96"``), informational.
    optimization_level:
        One of ``"O0"``, ``"O1"``, ``"O2"``, ``"O3"``.
    x87:
        Whether the x87 floating point instruction set is used (as in all
        three validation clusters).  x87 code keeps a stack-based register
        file that limits scheduling freedom, modelled as a penalty on the
        scheduling gain.
    scheduling_gain:
        Multiplier (< 1 is faster) applied to throughput-bound cycles.  If
        ``None`` the default for the optimisation level is used.
    bookkeeping_eliminated:
        Fraction of INT/BRANCH/LOOP operations removed by optimisation.  If
        ``None`` the default for the optimisation level is used.
    """

    name: str = "gcc"
    optimization_level: str = "O1"
    x87: bool = True
    scheduling_gain: float | None = None
    bookkeeping_eliminated: float | None = None

    def __post_init__(self) -> None:
        if self.optimization_level not in _LEVEL_DEFAULTS:
            raise ProcessorConfigError(
                f"unknown optimisation level {self.optimization_level!r}; "
                f"expected one of {sorted(_LEVEL_DEFAULTS)}")
        gain, eliminated = self.resolved_factors()
        if not 0.1 <= gain <= 1.5:
            raise ProcessorConfigError(f"scheduling_gain out of range: {gain}")
        if not 0.0 <= eliminated < 1.0:
            raise ProcessorConfigError(f"bookkeeping_eliminated out of range: {eliminated}")

    def resolved_factors(self) -> tuple[float, float]:
        """Return the (scheduling_gain, bookkeeping_eliminated) pair in force."""
        default_gain, default_elim = _LEVEL_DEFAULTS[self.optimization_level]
        gain = self.scheduling_gain if self.scheduling_gain is not None else default_gain
        eliminated = (self.bookkeeping_eliminated
                      if self.bookkeeping_eliminated is not None else default_elim)
        if self.x87:
            # The stack-based x87 register file costs extra fxch shuffling.
            gain = min(1.5, gain * 1.15)
        return gain, eliminated

    # ------------------------------------------------------------------

    def optimise_mix(self, mix: OperationMix) -> OperationMix:
        """Return the mix as actually executed after compiler optimisation."""
        _, eliminated = self.resolved_factors()
        keep = 1.0 - eliminated
        counts = {}
        for category, count in mix.counts.items():
            if category in (OpCategory.INT, OpCategory.BRANCH, OpCategory.LOOP):
                counts[category] = count * keep
            else:
                counts[category] = count
        return OperationMix(counts, mix.working_set_bytes)

    def schedule_factor(self) -> float:
        """Multiplier applied to throughput-bound cycles of the optimised mix."""
        gain, _ = self.resolved_factors()
        return gain

    def describe(self) -> str:
        fp = "x87" if self.x87 else "sse2"
        return f"{self.name} -{self.optimization_level} ({fp})"
