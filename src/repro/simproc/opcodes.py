"""Opcode categories, operation mixes and per-opcode cost tables.

PACE's C-language characterisation (clc) expresses the work of a serial
kernel as a tally of *performance critical operations*.  The paper's model
keeps only floating point operations (mnemonics ``MFDG``/``AFDG``/``DFDG``)
and treats loop start-up (``LFOR``) and branch (``IFBR``) costs as
negligible.  This module keeps the full vocabulary so that both the
fine-grained legacy approach and the coarse flop-rate approach can be
expressed with the same data structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Mapping

from repro.errors import ProcessorConfigError


class OpCategory(str, Enum):
    """Operation categories recognised by the processor cost model.

    The names mirror the PACE clc mnemonics where one exists (see Figure 5
    and Figure 7 of the paper); the remaining categories cover the memory
    and integer operations a real kernel also executes.
    """

    #: Floating point add/subtract (PACE mnemonic ``AFDG``).
    FADD = "AFDG"
    #: Floating point multiply (PACE mnemonic ``MFDG``).
    FMUL = "MFDG"
    #: Floating point divide (PACE mnemonic ``DFDG``).
    FDIV = "DFDG"
    #: Double precision load from memory (``LDDG``).
    LOAD = "LDDG"
    #: Double precision store to memory (``STDG``).
    STORE = "STDG"
    #: Integer / address arithmetic (``INTG``).
    INT = "INTG"
    #: Conditional branch check (PACE mnemonic ``IFBR``).
    BRANCH = "IFBR"
    #: Loop start-up overhead (PACE mnemonic ``LFOR``).
    LOOP = "LFOR"

    @classmethod
    def floating_point(cls) -> tuple["OpCategory", ...]:
        """The categories counted as floating point operations by PAPI."""
        return (cls.FADD, cls.FMUL, cls.FDIV)

    @classmethod
    def memory(cls) -> tuple["OpCategory", ...]:
        """The categories that touch the memory hierarchy."""
        return (cls.LOAD, cls.STORE)

    @classmethod
    def from_mnemonic(cls, mnemonic: str) -> "OpCategory":
        """Resolve a PACE mnemonic (``MFDG`` etc.) or category name (``FMUL``)."""
        token = mnemonic.strip().upper()
        for member in cls:
            if member.value == token or member.name == token:
                return member
        raise KeyError(f"unknown opcode mnemonic: {mnemonic!r}")


@dataclass
class OperationMix:
    """A tally of operations plus the working-set they touch.

    Instances are additive (``+``) and scalable (``*``) so that a per-cell
    mix produced by ``capp`` or by the flop-counting kernel can be scaled up
    to a per-block or per-iteration mix.
    """

    counts: dict[OpCategory, float] = field(default_factory=dict)
    #: Approximate size in bytes of the data the mix streams over.  Used by
    #: the memory hierarchy model to decide which cache level the kernel
    #: runs out of.
    working_set_bytes: float = 0.0

    def __post_init__(self) -> None:
        clean: dict[OpCategory, float] = {}
        for key, value in self.counts.items():
            category = key if isinstance(key, OpCategory) else OpCategory.from_mnemonic(str(key))
            if value < 0:
                raise ProcessorConfigError(f"negative operation count for {category}: {value}")
            clean[category] = clean.get(category, 0.0) + float(value)
        self.counts = clean
        if self.working_set_bytes < 0:
            raise ProcessorConfigError("working_set_bytes must be non-negative")

    # -- queries ------------------------------------------------------------

    def count(self, category: OpCategory) -> float:
        """Number of operations of ``category`` in the mix."""
        return self.counts.get(category, 0.0)

    @property
    def flops(self) -> float:
        """Total floating point operations (what PAPI's ``PAPI_FP_OPS`` counts)."""
        return sum(self.counts.get(cat, 0.0) for cat in OpCategory.floating_point())

    @property
    def memory_accesses(self) -> float:
        """Total load + store operations."""
        return sum(self.counts.get(cat, 0.0) for cat in OpCategory.memory())

    @property
    def total_operations(self) -> float:
        """Total operations of every category."""
        return sum(self.counts.values())

    def is_empty(self) -> bool:
        return self.total_operations == 0

    # -- algebra --------------------------------------------------------------

    def __add__(self, other: "OperationMix") -> "OperationMix":
        if not isinstance(other, OperationMix):
            return NotImplemented
        counts = dict(self.counts)
        for category, value in other.counts.items():
            counts[category] = counts.get(category, 0.0) + value
        return OperationMix(counts, max(self.working_set_bytes, other.working_set_bytes))

    def __mul__(self, factor: float) -> "OperationMix":
        if factor < 0:
            raise ProcessorConfigError("cannot scale an OperationMix by a negative factor")
        return OperationMix(
            {category: value * factor for category, value in self.counts.items()},
            self.working_set_bytes,
        )

    __rmul__ = __mul__

    def scaled(self, factor: float, working_set_bytes: float | None = None) -> "OperationMix":
        """Return the mix scaled by ``factor`` with an optional new working set."""
        mix = self * factor
        if working_set_bytes is not None:
            mix.working_set_bytes = float(working_set_bytes)
        return mix

    def with_working_set(self, working_set_bytes: float) -> "OperationMix":
        """Return a copy of the mix with a different working set size."""
        return OperationMix(dict(self.counts), float(working_set_bytes))

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_mnemonics(cls, tally: Mapping[str, float],
                       working_set_bytes: float = 0.0) -> "OperationMix":
        """Build a mix from PACE mnemonic names (``{"MFDG": 12, "AFDG": 9}``)."""
        return cls({OpCategory.from_mnemonic(k): v for k, v in tally.items()},
                   working_set_bytes)

    def as_mnemonics(self) -> dict[str, float]:
        """Export the tally keyed by PACE mnemonic."""
        return {category.value: value for category, value in sorted(
            self.counts.items(), key=lambda item: item[0].name)}


@dataclass
class OpcodeCostTable:
    """Per-opcode cycle costs for a processor.

    Two costs are stored per category:

    ``latency``
        Cycles from issue to result, as measured by a dependent-chain
        micro-benchmark.  This is what the *original* PACE opcode benchmarks
        measured and what the legacy prediction path uses.

    ``throughput``
        Reciprocal throughput — cycles per operation when the operation
        stream exposes instruction level parallelism and the superscalar
        core can overlap execution.  This feeds the achieved-rate model.
    """

    latency: dict[OpCategory, float]
    throughput: dict[OpCategory, float]

    def __post_init__(self) -> None:
        for category in OpCategory:
            if category not in self.latency:
                raise ProcessorConfigError(f"missing latency for opcode {category.name}")
            if category not in self.throughput:
                raise ProcessorConfigError(f"missing throughput for opcode {category.name}")
            if self.latency[category] < self.throughput[category]:
                raise ProcessorConfigError(
                    f"latency below throughput for {category.name}: "
                    f"{self.latency[category]} < {self.throughput[category]}")
            if self.throughput[category] <= 0:
                raise ProcessorConfigError(
                    f"non-positive throughput for {category.name}")

    def latency_cycles(self, mix: OperationMix) -> float:
        """Serial (latency-bound) cycle count of a mix: the legacy estimate."""
        return sum(count * self.latency[cat] for cat, count in mix.counts.items())

    def throughput_cycles(self, mix: OperationMix) -> float:
        """Throughput-bound cycle count of a mix, before ILP/compiler scaling."""
        return sum(count * self.throughput[cat] for cat, count in mix.counts.items())

    @classmethod
    def from_pairs(cls, pairs: Mapping[OpCategory, tuple[float, float]]) -> "OpcodeCostTable":
        """Build a table from ``{category: (latency, throughput)}``."""
        latency = {cat: float(lat) for cat, (lat, _) in pairs.items()}
        throughput = {cat: float(thr) for cat, (_, thr) in pairs.items()}
        return cls(latency, throughput)


def merge_mixes(mixes: Iterable[OperationMix]) -> OperationMix:
    """Sum an iterable of operation mixes into a single mix."""
    total = OperationMix()
    for mix in mixes:
        total = total + mix
    return total
