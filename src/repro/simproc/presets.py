"""Processor presets for the machines used in the paper.

The numeric parameters (cache sizes, opcode latencies, issue widths) follow
the published micro-architecture of each processor; the efficiency-style
parameters (``ilp_efficiency``, ``streaming_factor``) are calibrated so that
the *achieved* floating point rate of the SWEEP3D serial kernel measured by
the PAPI-substitute profiler lands close to the rates reported in the paper:

=========================  ======================  =====================
Machine                    Paper achieved rate      Problem size / PE
=========================  ======================  =====================
Pentium-3 1.4 GHz          110 MFLOPS               50 x 50 x 50
AMD Opteron 2.0 GHz        350 MFLOPS               50 x 50 x 50
Intel Itanium-2 1.6 GHz    225 MFLOPS               50 x 50 x 50
Hypothetical Opteron node  340 MFLOPS               5x5x100 / 25x25x200
=========================  ======================  =====================
"""

from __future__ import annotations

from typing import Callable

from repro.simproc.cache import CacheLevel, MemoryHierarchy
from repro.simproc.compiler import CompilerModel
from repro.simproc.opcodes import OpCategory, OpcodeCostTable
from repro.simproc.processor import ProcessorModel, SuperscalarModel

_KIB = 1024
_MIB = 1024 * 1024


def pentium3_1400() -> ProcessorModel:
    """Intel Pentium III 1.4 GHz (Tualatin-class), GNU C 2.96 ``-O1``, x87."""
    costs = OpcodeCostTable.from_pairs({
        OpCategory.FADD: (5.0, 1.0),
        OpCategory.FMUL: (7.0, 2.0),
        OpCategory.FDIV: (40.0, 37.0),
        OpCategory.LOAD: (5.0, 1.0),
        OpCategory.STORE: (4.0, 1.0),
        OpCategory.INT: (1.0, 0.5),
        OpCategory.BRANCH: (3.0, 1.0),
        OpCategory.LOOP: (6.0, 2.0),
    })
    memory = MemoryHierarchy(
        levels=[
            CacheLevel("L1", 16 * _KIB, access_cycles=3.0, line_bytes=32),
            CacheLevel("L2", 512 * _KIB, access_cycles=9.0, line_bytes=32),
        ],
        memory_access_cycles=160.0,
        streaming_factor=0.45,
    )
    superscalar = SuperscalarModel(issue_width=3, fp_pipelines=1, ilp_efficiency=0.30)
    compiler = CompilerModel(name="gcc-2.96", optimization_level="O1", x87=True)
    return ProcessorModel("Intel Pentium III 1.4GHz", 1.4e9, costs, memory,
                          superscalar, compiler)


def opteron_2000() -> ProcessorModel:
    """AMD Opteron 2.0 GHz (x86-64), GNU C 3.4.4 ``-O1 -mfpmath=387``."""
    costs = OpcodeCostTable.from_pairs({
        OpCategory.FADD: (5.0, 1.0),
        OpCategory.FMUL: (5.0, 1.0),
        OpCategory.FDIV: (30.0, 17.0),
        OpCategory.LOAD: (4.0, 0.5),
        OpCategory.STORE: (4.0, 1.0),
        OpCategory.INT: (1.0, 0.33),
        OpCategory.BRANCH: (2.0, 0.5),
        OpCategory.LOOP: (4.0, 1.0),
    })
    memory = MemoryHierarchy(
        levels=[
            CacheLevel("L1", 64 * _KIB, access_cycles=3.0, line_bytes=64),
            CacheLevel("L2", 1 * _MIB, access_cycles=12.0, line_bytes=64),
        ],
        memory_access_cycles=190.0,
        streaming_factor=0.30,
    )
    superscalar = SuperscalarModel(issue_width=3, fp_pipelines=2, ilp_efficiency=0.55)
    compiler = CompilerModel(name="gcc-3.4.4", optimization_level="O1", x87=True)
    return ProcessorModel("AMD Opteron 2.0GHz", 2.0e9, costs, memory,
                          superscalar, compiler)


def itanium2_1600() -> ProcessorModel:
    """Intel Itanium-2 1.6 GHz (IA-64), Intel C 8.1 ``-O1``.

    At ``-O1`` the compiler does not software-pipeline the sweep loops, so
    the wide in-order core runs far below peak — the paper measures only
    225 MFLOPS out of a 6.4 GFLOPS peak.
    """
    costs = OpcodeCostTable.from_pairs({
        OpCategory.FADD: (4.0, 1.0),
        OpCategory.FMUL: (4.0, 1.0),
        OpCategory.FDIV: (35.0, 30.0),
        OpCategory.LOAD: (6.0, 2.0),   # FP loads bypass L1 on Itanium-2
        OpCategory.STORE: (6.0, 2.0),
        OpCategory.INT: (1.0, 0.25),
        OpCategory.BRANCH: (2.0, 1.0),
        OpCategory.LOOP: (3.0, 2.0),
    })
    memory = MemoryHierarchy(
        levels=[
            CacheLevel("L2", 256 * _KIB, access_cycles=6.0, line_bytes=128),
            CacheLevel("L3", 3 * _MIB, access_cycles=14.0, line_bytes=128),
        ],
        memory_access_cycles=210.0,
        streaming_factor=0.55,
    )
    superscalar = SuperscalarModel(issue_width=6, fp_pipelines=4, ilp_efficiency=0.0)
    compiler = CompilerModel(name="icc-8.1", optimization_level="O1", x87=True)
    return ProcessorModel("Intel Itanium-2 1.6GHz", 1.6e9, costs, memory,
                          superscalar, compiler)


#: Registry of processor presets keyed by a short identifier.
PROCESSOR_PRESETS: dict[str, Callable[[], ProcessorModel]] = {
    "pentium3": pentium3_1400,
    "opteron": opteron_2000,
    "itanium2": itanium2_1600,
}


def processor_preset(name: str) -> ProcessorModel:
    """Instantiate a processor preset by short name (``pentium3``, ``opteron``, ``itanium2``)."""
    try:
        factory = PROCESSOR_PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown processor preset {name!r}; available: {sorted(PROCESSOR_PRESETS)}"
        ) from None
    return factory()
