"""The simulated processor model.

A :class:`ProcessorModel` answers "how long does this operation mix take?"
in two different ways:

* :meth:`ProcessorModel.execute_time` — the *achieved* behaviour of the
  processor, including superscalar overlap, compiler optimisation and memory
  hierarchy stalls.  This is the ground truth of the simulated machine: the
  discrete-event cluster simulator charges compute time through it and the
  PAPI-substitute profiler measures achieved MFLOPS from it.

* :meth:`ProcessorModel.legacy_opcode_time` — the prediction the *original*
  PACE hardware layer would have made by summing per-opcode micro-benchmark
  latencies obtained from dependent-chain benchmarks.  On superscalar
  processors this over-estimates the run time substantially, reproducing the
  up-to-50 % errors the paper reports for the old approach.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ProcessorConfigError
from repro.simproc.cache import MemoryHierarchy
from repro.simproc.compiler import CompilerModel
from repro.simproc.opcodes import OpcodeCostTable, OperationMix
from repro import units
from repro.units import snap_to_grid


@dataclass(frozen=True)
class SuperscalarModel:
    """Instruction-level-parallelism capability of the core.

    Parameters
    ----------
    issue_width:
        Maximum instructions issued per cycle.
    fp_pipelines:
        Number of floating point execution pipelines (peak flops/cycle for
        fused-free codes equals this value).
    ilp_efficiency:
        Fraction of the theoretically available overlap the core actually
        achieves on the (dependency-laden) sweep kernel, in ``[0, 1]``.
    """

    issue_width: int
    fp_pipelines: int
    ilp_efficiency: float

    def __post_init__(self) -> None:
        if self.issue_width < 1:
            raise ProcessorConfigError("issue_width must be >= 1")
        if self.fp_pipelines < 1:
            raise ProcessorConfigError("fp_pipelines must be >= 1")
        if not 0.0 <= self.ilp_efficiency <= 1.0:
            raise ProcessorConfigError("ilp_efficiency must be in [0, 1]")

    @property
    def effective_parallelism(self) -> float:
        """Average number of operations retired per cycle-slot of the model."""
        return 1.0 + (self.issue_width - 1) * self.ilp_efficiency


@dataclass(frozen=True)
class ProcessorModel:
    """A complete single-processor performance model.

    Parameters
    ----------
    name:
        Marketing name, e.g. ``"Intel Pentium III 1.4GHz"``.
    clock_hz:
        Core clock frequency.
    costs:
        Per-opcode latency/throughput cycle table.
    memory:
        Cache hierarchy model.
    superscalar:
        ILP capability.
    compiler:
        Compiler used to build the application on this machine.
    """

    name: str
    clock_hz: float
    costs: OpcodeCostTable
    memory: MemoryHierarchy
    superscalar: SuperscalarModel
    compiler: CompilerModel

    def __post_init__(self) -> None:
        if self.clock_hz <= 0:
            raise ProcessorConfigError("clock frequency must be positive")

    # -- achieved behaviour --------------------------------------------------

    def execute_cycles(self, mix: OperationMix) -> float:
        """Cycles needed to execute ``mix`` as an optimised instruction stream."""
        if mix.is_empty():
            return 0.0
        optimised = self.compiler.optimise_mix(mix)
        issue = self.costs.throughput_cycles(optimised)
        issue *= self.compiler.schedule_factor()
        issue /= self.superscalar.effective_parallelism
        stalls = self.memory.stall_cycles(
            optimised.memory_accesses, optimised.working_set_bytes)
        return issue + stalls

    def execute_time(self, mix: OperationMix) -> float:
        """Wall-clock seconds for ``mix`` on this processor (achieved behaviour)."""
        return self.execute_cycles(mix) / self.clock_hz

    def achieved_flop_rate(self, mix: OperationMix) -> float:
        """Achieved floating point rate (flop/s) while executing ``mix``.

        This is the quantity the paper measures with PAPI and records in the
        HMCL hardware model (e.g. 110 MFLOPS for the Pentium-3 cluster at
        50^3 cells per processor).
        """
        time = self.execute_time(mix)
        if time <= 0:
            raise ProcessorConfigError("cannot compute a flop rate for an empty mix")
        return mix.flops / time

    def seconds_per_flop(self, mix: OperationMix) -> float:
        """Achieved cost of one floating point operation, in seconds.

        This is exactly the value stored against ``MFDG``/``AFDG`` in the
        HMCL hardware object (Figure 7 stores it in microseconds).
        """
        return 1.0 / self.achieved_flop_rate(mix)

    # -- legacy (original PACE) behaviour -------------------------------------

    def opcode_benchmark(self) -> dict[str, float]:
        """Per-opcode times (seconds) as the original PACE micro-benchmarks report.

        Dependent-chain micro-benchmarks observe instruction *latency*, with
        no overlap, no compiler rescheduling and in-cache data.
        """
        return {category.value: self.costs.latency[category] / self.clock_hz
                for category in self.costs.latency}

    def legacy_opcode_time(self, mix: OperationMix) -> float:
        """Predicted seconds for ``mix`` using the legacy per-opcode summation."""
        return self.costs.latency_cycles(mix) / self.clock_hz

    # -- descriptive ----------------------------------------------------------

    @property
    def peak_flop_rate(self) -> float:
        """Peak floating point rate of the core (flop/s)."""
        return self.clock_hz * self.superscalar.fp_pipelines

    def efficiency(self, mix: OperationMix) -> float:
        """Achieved fraction of peak floating point rate for ``mix``."""
        return self.achieved_flop_rate(mix) / self.peak_flop_rate

    def scaled_clock(self, factor: float, name: str | None = None) -> "ProcessorModel":
        """Return a copy of this model with the clock scaled by ``factor``.

        Used by the speculative study of Section 6, where the achieved
        floating point rate is increased by 25 % and 50 %.
        """
        if factor <= 0:
            raise ProcessorConfigError("clock scaling factor must be positive")
        return replace(self, clock_hz=self.clock_hz * factor,
                       name=name or f"{self.name} (x{factor:g} clock)")

    def describe(self) -> str:
        return (f"{self.name}: {self.clock_hz / 1e9:.2f} GHz, "
                f"{self.superscalar.fp_pipelines} FP pipes, "
                f"{self.memory.describe()}, {self.compiler.describe()}, "
                f"peak {units.format_rate(self.peak_flop_rate)}")


@dataclass(frozen=True)
class QuantizedProcessor(ProcessorModel):
    """A processor whose modelled execute times snap to a dyadic time grid.

    Identical to :class:`ProcessorModel` except that
    :meth:`execute_time` rounds to the nearest multiple of
    ``time_quantum`` seconds (a power of two).  Together with
    :class:`~repro.simnet.link.QuantizedLink` this puts every event
    duration of a simulated run on one shared dyadic grid — the exactness
    precondition of the steady-state tier (:mod:`repro.simmpi.steady`).
    The cycle-level model (:meth:`execute_cycles`, flop rates, the legacy
    opcode path) is untouched; only the wall-clock conversion snaps.

    ``time_quantum = 0`` degrades to the continuous behaviour.
    """

    time_quantum: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.time_quantum < 0:
            raise ProcessorConfigError("time_quantum must be >= 0")

    def execute_time(self, mix: OperationMix) -> float:
        return snap_to_grid(super().execute_time(mix), self.time_quantum)
