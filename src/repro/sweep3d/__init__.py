"""A Python implementation of the ASCI SWEEP3D wavefront benchmark.

SWEEP3D solves a 1-group, time-independent, discrete-ordinates (S_N)
neutron transport problem on a 3-D Cartesian grid (Section 2 of the paper).
The spatial grid is decomposed over a 2-D ``Px x Py`` processor array; the
k dimension and the angles are blocked (parameters ``mk`` and ``mmi``) and
pipelined through the array as sweeps from each of the 8 octants.

The package provides

* :mod:`repro.sweep3d.quadrature` — level-symmetric S_N quadrature sets,
* :mod:`repro.sweep3d.geometry` — grids, octants and 2-D decomposition,
* :mod:`repro.sweep3d.input` — input decks mirroring the original code's
  parameters (it, jt, kt, mk, mmi, epsi ...),
* :mod:`repro.sweep3d.kernel` — the serial diamond-difference compute
  kernel (numpy) plus its operation-count characterisation,
* :mod:`repro.sweep3d.serial` — a single-process reference solver,
* :mod:`repro.sweep3d.parallel` — the KBA pipelined solver expressed as a
  :mod:`repro.simmpi` rank program,
* :mod:`repro.sweep3d.driver` — one-call execution on a simulated cluster,
* :mod:`repro.sweep3d.verification` — physics invariants used by tests.
"""

from repro.sweep3d.quadrature import LevelSymmetricQuadrature, OctantAngles
from repro.sweep3d.geometry import GlobalGrid, LocalGrid, Decomposition, Octant, octant_order
from repro.sweep3d.input import Sweep3DInput, standard_deck, parse_input_deck
from repro.sweep3d.kernel import SweepKernel, BlockResult
from repro.sweep3d.serial import SerialSweepSolver, SerialSolveResult
from repro.sweep3d.parallel import (
    ParallelSweepConfig,
    SweepCostTable,
    SweepPlanData,
    sweep_rank_program,
)
from repro.sweep3d.driver import (
    SimulationPlan,
    Sweep3DRunResult,
    run_parallel_sweep,
    run_serial_sweep,
)

__all__ = [
    "LevelSymmetricQuadrature",
    "OctantAngles",
    "GlobalGrid",
    "LocalGrid",
    "Decomposition",
    "Octant",
    "octant_order",
    "Sweep3DInput",
    "standard_deck",
    "parse_input_deck",
    "SweepKernel",
    "BlockResult",
    "SerialSweepSolver",
    "SerialSolveResult",
    "ParallelSweepConfig",
    "SweepCostTable",
    "SweepPlanData",
    "sweep_rank_program",
    "SimulationPlan",
    "Sweep3DRunResult",
    "run_parallel_sweep",
    "run_serial_sweep",
]
