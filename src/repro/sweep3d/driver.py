"""One-call drivers for serial and simulated-parallel SWEEP3D runs.

Two parallel entry points live here:

* :func:`run_parallel_sweep` — the original per-point path: one fresh
  :class:`~repro.simmpi.engine.ClusterEngine`, decomposition, quadrature and
  per-block operation-mix pricing per call.  It is the bit-for-bit reference
  the batched path is verified against.
* :class:`SimulationPlan` — the reusable lowering of one (deck, px, py,
  machine) configuration: topology validation, Cart2D decomposition,
  shared per-deck data and the memoised compute cost table are built once,
  and :meth:`SimulationPlan.run` re-executes the plan with per-run seeded
  noise.  This is what the scenario-sweep
  :class:`~repro.experiments.backends.SimulationBackend` evaluates grids
  through.

A plan additionally supports **trace replay** for modelled (timing-only)
runs: :meth:`SimulationPlan.compile_trace` records the plan's event
stream once (:mod:`repro.simmpi.trace`) and ``run(mode="replay")``
resolves each run as a vectorised max-plus recurrence over that trace —
bit-identical to the engine at matched noise seeds, an order of
magnitude faster per run.  ``mode="steady"`` goes one tier further for
periodic noise-free traces on a dyadic timebase: the steady-state tier
(:mod:`repro.simmpi.steady`) extrapolates the repeating regime in
O(period) instead of O(events), bit-identical or loudly falling back to
the full replay.  ``mode="auto"`` picks the fastest applicable tier:
steady for noise-free modelled runs (when it accepts), replay for other
modelled runs, the engine for numeric ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from repro.errors import DecompositionError, TraceError
from repro.profiling.phases import PhaseTimer
from repro.simmpi.capture import (
    CaptureInfo,
    collectives_per_period,
    tile_trace,
    verify_extension,
)
from repro.simmpi.engine import ClusterEngine, SimulationResult
from repro.simmpi.steady import MIN_REPEATS, SteadyStateError, detect_period, steady_replay
from repro.simmpi.trace import (
    EV_COLLECTIVE,
    BatchReplayResult,
    CompiledTrace,
    TraceRecorder,
)
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology
from repro.simproc.processor import ProcessorModel
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.parallel import (
    ParallelSweepConfig,
    SweepCostTable,
    SweepPlanData,
    make_decomposition,
    modelled_rank_summaries,
    sweep_rank_program,
)
from repro.sweep3d.serial import SerialSolveResult, SerialSweepSolver


@dataclass
class Sweep3DRunResult:
    """Outcome of a simulated parallel SWEEP3D run."""

    deck: Sweep3DInput
    px: int
    py: int
    simulation: SimulationResult
    rank_summaries: list[dict[str, Any]] = field(default_factory=list)

    @property
    def elapsed_time(self) -> float:
        """Simulated wall-clock time of the run (the paper's "Measurement" column)."""
        return self.simulation.elapsed_time

    @property
    def nranks(self) -> int:
        return self.px * self.py

    @property
    def iterations(self) -> int:
        return self.rank_summaries[0]["iterations"] if self.rank_summaries else 0

    @property
    def error_history(self) -> list[float]:
        return self.rank_summaries[0]["error_history"] if self.rank_summaries else []

    @property
    def total_messages(self) -> int:
        return self.simulation.traffic.messages

    def global_flux(self) -> np.ndarray | None:
        """Assemble the global scalar flux from numeric-mode rank outputs."""
        if not self.rank_summaries or self.rank_summaries[0]["phi_local"] is None:
            return None
        phi = np.zeros((self.deck.it, self.deck.jt, self.deck.kt))
        for summary in self.rank_summaries:
            local = summary["local_grid"]
            phi[local.i0:local.i0 + local.nx,
                local.j0:local.j0 + local.ny, :] = summary["phi_local"]
        return phi

    def compute_fraction(self) -> float:
        """Average fraction of rank time spent computing (vs communicating/waiting)."""
        ranks = self.simulation.ranks
        if not ranks:
            return 0.0
        return float(np.mean([r.compute_time / r.finish_time if r.finish_time > 0 else 0.0
                              for r in ranks]))


@dataclass
class Sweep3DSampleSet:
    """``S`` noisy samples of one plan, produced by a single batched replay.

    Sample ``s`` is bit-identical to ``plan.run(noise=noise, seed=seeds[s],
    mode="replay")`` (and therefore to the reference engine at the same
    seed); :meth:`sample` materialises it as a full
    :class:`Sweep3DRunResult` on demand.  Summary statistics delegate to
    the underlying :class:`~repro.simmpi.trace.BatchReplayResult`.
    """

    deck: Sweep3DInput
    px: int
    py: int
    batch: BatchReplayResult

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def n_samples(self) -> int:
        return len(self.batch)

    @property
    def seeds(self) -> list[int]:
        return self.batch.seeds

    @property
    def elapsed_times(self) -> np.ndarray:
        """``(S,)`` elapsed time of every sample."""
        return self.batch.elapsed

    @property
    def elapsed_mean(self) -> float:
        return self.batch.elapsed_mean

    @property
    def elapsed_std(self) -> float:
        return self.batch.elapsed_std

    @property
    def elapsed_ci95(self) -> float:
        return self.batch.elapsed_ci95

    def sample(self, index: int) -> Sweep3DRunResult:
        """Materialise sample ``index`` as a full run result."""
        simulation = self.batch.sample(index)
        summaries = [value for value in simulation.return_values]
        return Sweep3DRunResult(deck=self.deck, px=self.px, py=self.py,
                                simulation=simulation,
                                rank_summaries=summaries)

    def summary(self) -> dict[str, float]:
        return self.batch.summary()


def run_serial_sweep(deck: Sweep3DInput, max_iterations: int | None = None,
                     require_convergence: bool = False) -> SerialSolveResult:
    """Solve ``deck`` with the single-process reference solver."""
    return SerialSweepSolver(deck).solve(max_iterations=max_iterations,
                                         require_convergence=require_convergence)


def run_parallel_sweep(deck: Sweep3DInput,
                       px: int,
                       py: int,
                       topology: ClusterTopology,
                       processor: ProcessorModel | None = None,
                       noise: NoiseModel | None = None,
                       numeric: bool = False,
                       charge_compute: bool = True,
                       convergence_collectives: bool = True) -> Sweep3DRunResult:
    """Run the pipelined parallel sweep on a simulated cluster.

    Parameters
    ----------
    deck:
        Problem definition.
    px, py:
        Logical processor array dimensions (``px * py`` ranks are simulated).
    topology:
        Simulated cluster interconnect/node layout.
    processor:
        Processor model used to charge per-block compute time.  Required
        unless ``charge_compute`` is false.
    noise:
        OS/network noise model (defaults to none — deterministic run).
    numeric:
        Whether to perform real flux arithmetic (small grids only).
    charge_compute:
        Whether to charge modelled compute time per block.
    convergence_collectives:
        Whether to perform the per-iteration global reductions.
    """
    if charge_compute and processor is None:
        raise DecompositionError(
            "run_parallel_sweep needs a processor model when charge_compute=True")
    decomp = make_decomposition(deck, px, py)
    config = ParallelSweepConfig(numeric=numeric, charge_compute=charge_compute,
                                 convergence_collectives=convergence_collectives)
    engine = ClusterEngine(topology, processor=processor, noise=noise)
    simulation = engine.run(sweep_rank_program, nranks=decomp.nranks,
                            program_args=(deck, decomp, config))
    summaries = [value for value in simulation.return_values]
    return Sweep3DRunResult(deck=deck, px=px, py=py, simulation=simulation,
                            rank_summaries=summaries)


def _summaries_match(expected: list[dict[str, Any]],
                     recorded: list[Any]) -> bool:
    """Field-exact equality of synthesized vs recorded rank summaries.

    Used by periodic capture to validate the analytic return-value
    synthesis (:func:`~repro.sweep3d.parallel.modelled_rank_summaries`)
    against what the short probe capture actually recorded — every float
    compared exactly, since the contract is bit-identity.
    """
    if len(expected) != len(recorded):
        return False
    for want, got in zip(expected, recorded):
        if not isinstance(got, dict) or set(want) != set(got):
            return False
        if (want["rank"] != got["rank"]
                or got["phi_local"] is not None
                or want["local_grid"] != got["local_grid"]
                or want["error_history"] != got["error_history"]
                or want["leakage_history"] != got["leakage_history"]
                or want["blocks_swept"] != got["blocks_swept"]
                or want["iterations"] != got["iterations"]):
            return False
    return True


class SimulationPlan:
    """A reusable lowering of one simulated SWEEP3D configuration.

    Building a plan performs every piece of work that does not depend on
    the individual run: the rank-count validation, the 2-D decomposition,
    the shared quadrature/blocking data and (for modelled runs) the
    memoised compute cost table.  One :class:`ClusterEngine` is kept for
    the plan's lifetime and re-executed per run — the engine resets its
    per-run state, so repeated runs are bit-identical to fresh engines.

    Parameters mirror :func:`run_parallel_sweep`; ``cost_table`` may be
    shared between plans bound to the same processor model so that grid
    points pricing the same block shapes reuse each other's work.
    """

    def __init__(self, deck: Sweep3DInput, px: int, py: int,
                 topology: ClusterTopology,
                 processor: ProcessorModel | None = None,
                 numeric: bool = False,
                 charge_compute: bool = True,
                 convergence_collectives: bool = True,
                 cost_table: SweepCostTable | None = None,
                 trace_cache: "Any | None" = None):
        if charge_compute and processor is None:
            raise DecompositionError(
                "SimulationPlan needs a processor model when charge_compute=True")
        if cost_table is not None and cost_table.processor is not processor:
            raise DecompositionError(
                "the shared cost table was priced for a different processor model")
        self.deck = deck
        self.px = px
        self.py = py
        self.topology = topology
        self.processor = processor
        self.decomp = make_decomposition(deck, px, py)
        topology.validate_rank_count(self.decomp.nranks)
        self.config = ParallelSweepConfig(
            numeric=numeric, charge_compute=charge_compute,
            convergence_collectives=convergence_collectives)
        self.shared = SweepPlanData.for_deck(deck)
        if charge_compute and processor is not None:
            self.costs = cost_table if cost_table is not None else SweepCostTable(processor)
        else:
            self.costs = None
        self.engine = ClusterEngine(topology, processor=processor)
        #: Number of times this plan has been executed.
        self.runs = 0
        #: Number of runs served by trace replay (vs the reference engine).
        self.replays = 0
        #: Number of runs served by the steady-state tier.
        self.steadies = 0
        #: Execution tier of the most recent run: "engine", "replay" or
        #: "steady" (None before the first run).
        self.last_execution: str | None = None
        #: Why the steady tier refused the most recent run, if it did.
        self.last_steady_refusal: str | None = None
        #: Optional :class:`~repro.simmpi.tracecache.TraceDiskCache`
        #: consulted (and filled) by :meth:`compile_trace`.
        self.trace_cache = trace_cache
        #: How the most recent :meth:`compile_trace` produced its trace
        #: (None until a trace has been compiled).
        self.last_capture: CaptureInfo | None = None
        #: Host wall-clock accounting per execution phase ("capture",
        #: "replay", "steady", "engine"), accumulated across runs.
        self.phases = PhaseTimer()
        self._trace: CompiledTrace | None = None

    @property
    def nranks(self) -> int:
        return self.decomp.nranks

    #: Shortest candidate capture: enough iterations for the detector to
    #: see ``MIN_REPEATS`` whole periods (the sweep's period is one
    #: iteration and its warm-up a fraction of one, so one extra
    #: iteration of slack suffices; if not, the probe doubles).
    _MIN_SHORT_ITERATIONS = MIN_REPEATS + 1

    def trace_fingerprint(self) -> tuple:
        """A value identity of this plan's *pattern*, keying the trace cache.

        Two plans with equal fingerprints record byte-identical traces:
        the fingerprint covers everything the recorded pattern is a
        function of — the deck parameters, the processor array shape, the
        processor and link models (frozen dataclasses, so their reprs are
        stable value representations) and the capture-relevant config
        flags.  It deliberately **excludes** the machine/topology names
        and every noise parameter: a trace is a pattern, shared by all
        noise seeds and by presets that alias the same models.
        """
        deck = self.deck
        topo = self.topology
        return (
            "sweep3d-trace", 1,
            (deck.it, deck.jt, deck.kt, deck.mk, deck.mmi, deck.sn,
             deck.epsi, deck.max_iterations, deck.dx, deck.dy, deck.dz,
             deck.sigma_t, deck.sigma_s, deck.fixed_source,
             deck.flux_fixup),
            self.px, self.py,
            repr(self.processor),
            topo.processors_per_node,
            repr(topo.inter_node),
            repr(topo.intra_node),
            self.config.charge_compute,
            self.config.convergence_collectives,
        )

    def compile_trace(self) -> CompiledTrace:
        """Obtain this plan's event stream once for max-plus replay.

        The trace is captured lazily and cached for the plan's lifetime
        (the pattern is a pure function of the plan's deck/decomposition).
        Capture itself is tiered, cheapest first, each tier bit-identical
        to the O(events) recorder or skipped with the reason recorded in
        :attr:`last_capture`:

        1. the persistent :attr:`trace_cache` (if one is attached), keyed
           by :meth:`trace_fingerprint`;
        2. **periodic capture** — record only warm-up plus a few whole
           periods, then tile the period
           (:func:`~repro.simmpi.capture.tile_trace`), refusing loudly on
           any structural doubt;
        3. the full :class:`~repro.simmpi.trace.TraceRecorder` pass.

        Numeric runs carry real payloads whose values feed back into the
        pattern, so they cannot be trace-compiled and raise
        :class:`~repro.errors.TraceError`.
        """
        if self.config.numeric:
            raise TraceError(
                "trace replay supports modelled (timing-only) runs; numeric "
                "runs must use the reference engine")
        if self._trace is None:
            with self.phases.phase("capture"):
                self._trace = self._capture_trace()
        return self._trace

    def _record_trace(self, deck: Sweep3DInput) -> CompiledTrace:
        """One recorder pass over ``deck``, reusing the plan's shared data.

        Valid for any ``max_iterations`` variant of the plan's deck: the
        decomposition, quadrature/blocking data and cost table do not
        depend on the iteration count.
        """
        recorder = TraceRecorder(self.topology, processor=self.processor)
        return recorder.record(
            sweep_rank_program, nranks=self.decomp.nranks,
            program_args=(deck, self.decomp, self.config),
            program_kwargs={"costs": self.costs, "shared": self.shared})

    def _capture_trace(self) -> CompiledTrace:
        """The tiered capture chain behind :meth:`compile_trace`."""
        start = time.perf_counter()
        key = None
        if self.trace_cache is not None:
            key = self.trace_fingerprint()
            cached = self.trace_cache.get(key)
            if cached is not None:
                self.last_capture = CaptureInfo(
                    mode="cache",
                    total_iterations=self.deck.max_iterations,
                    capture_s=time.perf_counter() - start)
                return cached
        try:
            trace, info = self._periodic_capture()
        except TraceError as exc:
            trace = self._record_trace(self.deck)
            info = CaptureInfo(mode="full",
                               total_iterations=self.deck.max_iterations,
                               reason=str(exc))
        info.capture_s = time.perf_counter() - start
        self.last_capture = info
        if key is not None:
            self.trace_cache.put(key, trace)
        return trace

    def _periodic_capture(self) -> tuple[CompiledTrace, CaptureInfo]:
        """Record a short prefix, prove its period, tile the remainder.

        Soundness rests on the recorder being timing-free: the trace of
        ``m`` iterations is exactly the first ``n_m`` events of the trace
        of ``T > m`` iterations, so extending the short capture by whole
        periods *is* the longer capture — provided the period structure
        genuinely extends.  That proviso is enforced, not assumed: raises
        :class:`~repro.errors.TraceError` (and the caller falls back to
        the full recorder) unless every check below passes, so the result
        is bit-identical to full capture or refused loudly.
        """
        total = self.deck.max_iterations
        m = self._MIN_SHORT_ITERATIONS
        if total < 2 * m:
            raise TraceError(
                f"periodic capture refused: too few iterations ({total}) "
                f"to amortise a {m}-iteration probe capture")
        if not self.config.convergence_collectives:
            raise TraceError(
                "periodic capture refused: without convergence collectives "
                "there is no per-iteration anchor to count tiled iterations")
        # Grow the probe until the detector accepts (the sweep's period is
        # one iteration, so the first probe almost always suffices).
        while True:
            short_deck = replace(self.deck, max_iterations=m)
            short = self._record_trace(short_deck)
            info = detect_period(short)
            if info.periodic:
                break
            m *= 2
            if 2 * m > total:
                raise TraceError(
                    "periodic capture refused: no period detected within "
                    f"half the run ({info.reason})")
        # Anchor the iteration count on the per-period collective count:
        # modelled sweeps perform exactly two reductions per iteration.
        per_period = collectives_per_period(short, info)
        if per_period <= 0 or per_period % 2:
            raise TraceError(
                "periodic capture refused: the detected period holds "
                f"{per_period} collective(s), not the two per iteration "
                "the sweep's convergence reductions contribute")
        iters_per_period = per_period // 2
        remaining = total - m
        if remaining % iters_per_period:
            raise TraceError(
                f"periodic capture refused: remaining iterations "
                f"({remaining}) are not a whole number of "
                f"{iters_per_period}-iteration periods")
        tiles = remaining // iters_per_period
        # The rank programs' return values are synthesized analytically;
        # cross-check the synthesis against the recorded prefix first.
        expected_short = modelled_rank_summaries(
            short_deck, self.decomp, self.config, self.shared)
        if not _summaries_match(expected_short, short._return_values):
            raise TraceError(
                "periodic capture refused: synthesized rank summaries do "
                "not match the recorded prefix's return values")
        full_values = modelled_rank_summaries(
            self.deck, self.decomp, self.config, self.shared)
        full = tile_trace(short, info, tiles, return_values=full_values,
                          topology=self.topology)
        # Re-verify on the synthesized trace: the same structure must
        # extend by exactly `tiles` repeats.
        failure = verify_extension(full, info, info.repeats + tiles)
        if failure:
            raise TraceError(f"periodic capture refused: {failure}")
        collectives = int(np.count_nonzero(full.event_kind == EV_COLLECTIVE))
        if collectives != 2 * total:
            raise TraceError(
                f"periodic capture refused: tiled collective count "
                f"({collectives}) does not anchor {total} iterations")
        return full, CaptureInfo(
            mode="periodic", total_iterations=total, short_iterations=m,
            tiles=tiles, warmup=info.warmup, period=info.period,
            drain=info.drain, sends_per_period=info.sends_per_period,
            iterations_per_period=iters_per_period)

    def run(self, noise: NoiseModel | None = None,
            seed: int | None = None,
            mode: str = "engine",
            samples: int | None = None
            ) -> Sweep3DRunResult | Sweep3DSampleSet:
        """Execute the plan once — or ``samples`` times in one batch.

        ``noise`` defaults to a disabled (deterministic) model; passing
        ``seed`` instead reseeds a copy of ``noise`` so that every scenario
        of a sweep owns an independent, reproducible stream.  The noise is
        passed to the engine per run — a shared plan carries no cross-run
        mutable state.

        ``mode`` selects the execution tier: ``"engine"`` (default) runs
        the reference :class:`~repro.simmpi.engine.ClusterEngine`;
        ``"replay"`` resolves the run from the compiled trace
        (:meth:`compile_trace`), bit-identically; ``"steady"`` asks the
        steady-state tier (:mod:`repro.simmpi.steady`) to resolve the
        periodic regime in O(period) — bit-identical when it accepts,
        falling back to the full replay (with the reason recorded in
        :attr:`last_steady_refusal`) when it refuses; ``"auto"`` picks
        the fastest applicable tier — steady for noise-free modelled
        runs, replay for noisy modelled runs, the engine for numeric
        ones.  :attr:`last_execution` records which tier produced the
        most recent result.

        With ``samples=S`` the plan resolves ``S`` independently seeded
        noisy runs in **one** batched max-plus pass
        (:meth:`~repro.simmpi.trace.CompiledTrace.replay_batch`) and
        returns a :class:`Sweep3DSampleSet`.  Sample ``s`` uses seed
        ``base + s`` — ``base`` being ``seed`` if given, else
        ``noise.seed`` — and is bit-identical to the single run at that
        seed.  Multi-sample runs are replay-only: ``mode`` must be
        ``"replay"`` or ``"auto"``, and numeric plans raise
        :class:`~repro.errors.TraceError`.
        """
        if mode not in ("engine", "replay", "auto", "steady"):
            raise ValueError(
                f"unknown simulation mode {mode!r}; expected 'engine', "
                "'replay', 'steady' or 'auto'")
        if noise is None:
            noise = NoiseModel.disabled()
        if seed is not None:
            noise = noise.reseeded(seed)
        self.last_steady_refusal = None
        if samples is not None:
            if samples < 1:
                raise ValueError("samples must be >= 1")
            if mode in ("engine", "steady"):
                raise ValueError(
                    "multi-sample runs are resolved by batched trace "
                    "replay; use mode='replay' or 'auto'")
            seeds = [noise.seed + offset for offset in range(samples)]
            trace = self.compile_trace()
            with self.phases.phase("replay"):
                batch = trace.replay_batch(seeds, noise)
            self.replays += samples
            self.runs += samples
            self.last_execution = "replay"
            return Sweep3DSampleSet(deck=self.deck, px=self.px, py=self.py,
                                    batch=batch)
        if mode in ("replay", "steady") or (mode == "auto"
                                            and not self.config.numeric):
            trace = self.compile_trace()
            simulation = None
            # "auto" only *attempts* steady when noise is off — a noisy
            # run has no repeating period, so the attempt would always
            # refuse and the O(events) scan would be wasted.
            if mode == "steady" or (mode == "auto" and noise.is_disabled()):
                try:
                    with self.phases.phase("steady"):
                        simulation = steady_replay(trace, noise)
                    self.steadies += 1
                    self.last_execution = "steady"
                except SteadyStateError as exc:
                    self.last_steady_refusal = str(exc)
            if simulation is None:
                with self.phases.phase("replay"):
                    simulation = trace.replay(noise)
                self.replays += 1
                self.last_execution = "replay"
        else:
            with self.phases.phase("engine"):
                simulation = self.engine.run(
                    sweep_rank_program, nranks=self.decomp.nranks,
                    program_args=(self.deck, self.decomp, self.config),
                    program_kwargs={"costs": self.costs, "shared": self.shared},
                    noise=noise)
            self.last_execution = "engine"
        self.runs += 1
        summaries = [value for value in simulation.return_values]
        return Sweep3DRunResult(deck=self.deck, px=self.px, py=self.py,
                                simulation=simulation, rank_summaries=summaries)
