"""One-call drivers for serial and simulated-parallel SWEEP3D runs.

Two parallel entry points live here:

* :func:`run_parallel_sweep` — the original per-point path: one fresh
  :class:`~repro.simmpi.engine.ClusterEngine`, decomposition, quadrature and
  per-block operation-mix pricing per call.  It is the bit-for-bit reference
  the batched path is verified against.
* :class:`SimulationPlan` — the reusable lowering of one (deck, px, py,
  machine) configuration: topology validation, Cart2D decomposition,
  shared per-deck data and the memoised compute cost table are built once,
  and :meth:`SimulationPlan.run` re-executes the plan with per-run seeded
  noise.  This is what the scenario-sweep
  :class:`~repro.experiments.backends.SimulationBackend` evaluates grids
  through.

A plan additionally supports **trace replay** for modelled (timing-only)
runs: :meth:`SimulationPlan.compile_trace` records the plan's event
stream once (:mod:`repro.simmpi.trace`) and ``run(mode="replay")``
resolves each run as a vectorised max-plus recurrence over that trace —
bit-identical to the engine at matched noise seeds, an order of
magnitude faster per run.  ``mode="steady"`` goes one tier further for
periodic noise-free traces on a dyadic timebase: the steady-state tier
(:mod:`repro.simmpi.steady`) extrapolates the repeating regime in
O(period) instead of O(events), bit-identical or loudly falling back to
the full replay.  ``mode="auto"`` picks the fastest applicable tier:
steady for noise-free modelled runs (when it accepts), replay for other
modelled runs, the engine for numeric ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DecompositionError, TraceError
from repro.simmpi.engine import ClusterEngine, SimulationResult
from repro.simmpi.steady import SteadyStateError, steady_replay
from repro.simmpi.trace import BatchReplayResult, CompiledTrace, TraceRecorder
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology
from repro.simproc.processor import ProcessorModel
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.parallel import (
    ParallelSweepConfig,
    SweepCostTable,
    SweepPlanData,
    make_decomposition,
    sweep_rank_program,
)
from repro.sweep3d.serial import SerialSolveResult, SerialSweepSolver


@dataclass
class Sweep3DRunResult:
    """Outcome of a simulated parallel SWEEP3D run."""

    deck: Sweep3DInput
    px: int
    py: int
    simulation: SimulationResult
    rank_summaries: list[dict[str, Any]] = field(default_factory=list)

    @property
    def elapsed_time(self) -> float:
        """Simulated wall-clock time of the run (the paper's "Measurement" column)."""
        return self.simulation.elapsed_time

    @property
    def nranks(self) -> int:
        return self.px * self.py

    @property
    def iterations(self) -> int:
        return self.rank_summaries[0]["iterations"] if self.rank_summaries else 0

    @property
    def error_history(self) -> list[float]:
        return self.rank_summaries[0]["error_history"] if self.rank_summaries else []

    @property
    def total_messages(self) -> int:
        return self.simulation.traffic.messages

    def global_flux(self) -> np.ndarray | None:
        """Assemble the global scalar flux from numeric-mode rank outputs."""
        if not self.rank_summaries or self.rank_summaries[0]["phi_local"] is None:
            return None
        phi = np.zeros((self.deck.it, self.deck.jt, self.deck.kt))
        for summary in self.rank_summaries:
            local = summary["local_grid"]
            phi[local.i0:local.i0 + local.nx,
                local.j0:local.j0 + local.ny, :] = summary["phi_local"]
        return phi

    def compute_fraction(self) -> float:
        """Average fraction of rank time spent computing (vs communicating/waiting)."""
        ranks = self.simulation.ranks
        if not ranks:
            return 0.0
        return float(np.mean([r.compute_time / r.finish_time if r.finish_time > 0 else 0.0
                              for r in ranks]))


@dataclass
class Sweep3DSampleSet:
    """``S`` noisy samples of one plan, produced by a single batched replay.

    Sample ``s`` is bit-identical to ``plan.run(noise=noise, seed=seeds[s],
    mode="replay")`` (and therefore to the reference engine at the same
    seed); :meth:`sample` materialises it as a full
    :class:`Sweep3DRunResult` on demand.  Summary statistics delegate to
    the underlying :class:`~repro.simmpi.trace.BatchReplayResult`.
    """

    deck: Sweep3DInput
    px: int
    py: int
    batch: BatchReplayResult

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def n_samples(self) -> int:
        return len(self.batch)

    @property
    def seeds(self) -> list[int]:
        return self.batch.seeds

    @property
    def elapsed_times(self) -> np.ndarray:
        """``(S,)`` elapsed time of every sample."""
        return self.batch.elapsed

    @property
    def elapsed_mean(self) -> float:
        return self.batch.elapsed_mean

    @property
    def elapsed_std(self) -> float:
        return self.batch.elapsed_std

    @property
    def elapsed_ci95(self) -> float:
        return self.batch.elapsed_ci95

    def sample(self, index: int) -> Sweep3DRunResult:
        """Materialise sample ``index`` as a full run result."""
        simulation = self.batch.sample(index)
        summaries = [value for value in simulation.return_values]
        return Sweep3DRunResult(deck=self.deck, px=self.px, py=self.py,
                                simulation=simulation,
                                rank_summaries=summaries)

    def summary(self) -> dict[str, float]:
        return self.batch.summary()


def run_serial_sweep(deck: Sweep3DInput, max_iterations: int | None = None,
                     require_convergence: bool = False) -> SerialSolveResult:
    """Solve ``deck`` with the single-process reference solver."""
    return SerialSweepSolver(deck).solve(max_iterations=max_iterations,
                                         require_convergence=require_convergence)


def run_parallel_sweep(deck: Sweep3DInput,
                       px: int,
                       py: int,
                       topology: ClusterTopology,
                       processor: ProcessorModel | None = None,
                       noise: NoiseModel | None = None,
                       numeric: bool = False,
                       charge_compute: bool = True,
                       convergence_collectives: bool = True) -> Sweep3DRunResult:
    """Run the pipelined parallel sweep on a simulated cluster.

    Parameters
    ----------
    deck:
        Problem definition.
    px, py:
        Logical processor array dimensions (``px * py`` ranks are simulated).
    topology:
        Simulated cluster interconnect/node layout.
    processor:
        Processor model used to charge per-block compute time.  Required
        unless ``charge_compute`` is false.
    noise:
        OS/network noise model (defaults to none — deterministic run).
    numeric:
        Whether to perform real flux arithmetic (small grids only).
    charge_compute:
        Whether to charge modelled compute time per block.
    convergence_collectives:
        Whether to perform the per-iteration global reductions.
    """
    if charge_compute and processor is None:
        raise DecompositionError(
            "run_parallel_sweep needs a processor model when charge_compute=True")
    decomp = make_decomposition(deck, px, py)
    config = ParallelSweepConfig(numeric=numeric, charge_compute=charge_compute,
                                 convergence_collectives=convergence_collectives)
    engine = ClusterEngine(topology, processor=processor, noise=noise)
    simulation = engine.run(sweep_rank_program, nranks=decomp.nranks,
                            program_args=(deck, decomp, config))
    summaries = [value for value in simulation.return_values]
    return Sweep3DRunResult(deck=deck, px=px, py=py, simulation=simulation,
                            rank_summaries=summaries)


class SimulationPlan:
    """A reusable lowering of one simulated SWEEP3D configuration.

    Building a plan performs every piece of work that does not depend on
    the individual run: the rank-count validation, the 2-D decomposition,
    the shared quadrature/blocking data and (for modelled runs) the
    memoised compute cost table.  One :class:`ClusterEngine` is kept for
    the plan's lifetime and re-executed per run — the engine resets its
    per-run state, so repeated runs are bit-identical to fresh engines.

    Parameters mirror :func:`run_parallel_sweep`; ``cost_table`` may be
    shared between plans bound to the same processor model so that grid
    points pricing the same block shapes reuse each other's work.
    """

    def __init__(self, deck: Sweep3DInput, px: int, py: int,
                 topology: ClusterTopology,
                 processor: ProcessorModel | None = None,
                 numeric: bool = False,
                 charge_compute: bool = True,
                 convergence_collectives: bool = True,
                 cost_table: SweepCostTable | None = None):
        if charge_compute and processor is None:
            raise DecompositionError(
                "SimulationPlan needs a processor model when charge_compute=True")
        if cost_table is not None and cost_table.processor is not processor:
            raise DecompositionError(
                "the shared cost table was priced for a different processor model")
        self.deck = deck
        self.px = px
        self.py = py
        self.topology = topology
        self.processor = processor
        self.decomp = make_decomposition(deck, px, py)
        topology.validate_rank_count(self.decomp.nranks)
        self.config = ParallelSweepConfig(
            numeric=numeric, charge_compute=charge_compute,
            convergence_collectives=convergence_collectives)
        self.shared = SweepPlanData.for_deck(deck)
        if charge_compute and processor is not None:
            self.costs = cost_table if cost_table is not None else SweepCostTable(processor)
        else:
            self.costs = None
        self.engine = ClusterEngine(topology, processor=processor)
        #: Number of times this plan has been executed.
        self.runs = 0
        #: Number of runs served by trace replay (vs the reference engine).
        self.replays = 0
        #: Number of runs served by the steady-state tier.
        self.steadies = 0
        #: Execution tier of the most recent run: "engine", "replay" or
        #: "steady" (None before the first run).
        self.last_execution: str | None = None
        #: Why the steady tier refused the most recent run, if it did.
        self.last_steady_refusal: str | None = None
        self._trace: CompiledTrace | None = None

    @property
    def nranks(self) -> int:
        return self.decomp.nranks

    def compile_trace(self) -> CompiledTrace:
        """Record this plan's event stream once for max-plus replay.

        The trace is captured lazily and cached for the plan's lifetime
        (the pattern is a pure function of the plan's deck/decomposition).
        Numeric runs carry real payloads whose values feed back into the
        pattern, so they cannot be trace-compiled and raise
        :class:`~repro.errors.TraceError`.
        """
        if self.config.numeric:
            raise TraceError(
                "trace replay supports modelled (timing-only) runs; numeric "
                "runs must use the reference engine")
        if self._trace is None:
            recorder = TraceRecorder(self.topology, processor=self.processor)
            self._trace = recorder.record(
                sweep_rank_program, nranks=self.decomp.nranks,
                program_args=(self.deck, self.decomp, self.config),
                program_kwargs={"costs": self.costs, "shared": self.shared})
        return self._trace

    def run(self, noise: NoiseModel | None = None,
            seed: int | None = None,
            mode: str = "engine",
            samples: int | None = None
            ) -> Sweep3DRunResult | Sweep3DSampleSet:
        """Execute the plan once — or ``samples`` times in one batch.

        ``noise`` defaults to a disabled (deterministic) model; passing
        ``seed`` instead reseeds a copy of ``noise`` so that every scenario
        of a sweep owns an independent, reproducible stream.  The noise is
        passed to the engine per run — a shared plan carries no cross-run
        mutable state.

        ``mode`` selects the execution tier: ``"engine"`` (default) runs
        the reference :class:`~repro.simmpi.engine.ClusterEngine`;
        ``"replay"`` resolves the run from the compiled trace
        (:meth:`compile_trace`), bit-identically; ``"steady"`` asks the
        steady-state tier (:mod:`repro.simmpi.steady`) to resolve the
        periodic regime in O(period) — bit-identical when it accepts,
        falling back to the full replay (with the reason recorded in
        :attr:`last_steady_refusal`) when it refuses; ``"auto"`` picks
        the fastest applicable tier — steady for noise-free modelled
        runs, replay for noisy modelled runs, the engine for numeric
        ones.  :attr:`last_execution` records which tier produced the
        most recent result.

        With ``samples=S`` the plan resolves ``S`` independently seeded
        noisy runs in **one** batched max-plus pass
        (:meth:`~repro.simmpi.trace.CompiledTrace.replay_batch`) and
        returns a :class:`Sweep3DSampleSet`.  Sample ``s`` uses seed
        ``base + s`` — ``base`` being ``seed`` if given, else
        ``noise.seed`` — and is bit-identical to the single run at that
        seed.  Multi-sample runs are replay-only: ``mode`` must be
        ``"replay"`` or ``"auto"``, and numeric plans raise
        :class:`~repro.errors.TraceError`.
        """
        if mode not in ("engine", "replay", "auto", "steady"):
            raise ValueError(
                f"unknown simulation mode {mode!r}; expected 'engine', "
                "'replay', 'steady' or 'auto'")
        if noise is None:
            noise = NoiseModel.disabled()
        if seed is not None:
            noise = noise.reseeded(seed)
        self.last_steady_refusal = None
        if samples is not None:
            if samples < 1:
                raise ValueError("samples must be >= 1")
            if mode in ("engine", "steady"):
                raise ValueError(
                    "multi-sample runs are resolved by batched trace "
                    "replay; use mode='replay' or 'auto'")
            seeds = [noise.seed + offset for offset in range(samples)]
            batch = self.compile_trace().replay_batch(seeds, noise)
            self.replays += samples
            self.runs += samples
            self.last_execution = "replay"
            return Sweep3DSampleSet(deck=self.deck, px=self.px, py=self.py,
                                    batch=batch)
        if mode in ("replay", "steady") or (mode == "auto"
                                            and not self.config.numeric):
            trace = self.compile_trace()
            simulation = None
            # "auto" only *attempts* steady when noise is off — a noisy
            # run has no repeating period, so the attempt would always
            # refuse and the O(events) scan would be wasted.
            if mode == "steady" or (mode == "auto" and noise.is_disabled()):
                try:
                    simulation = steady_replay(trace, noise)
                    self.steadies += 1
                    self.last_execution = "steady"
                except SteadyStateError as exc:
                    self.last_steady_refusal = str(exc)
            if simulation is None:
                simulation = trace.replay(noise)
                self.replays += 1
                self.last_execution = "replay"
        else:
            simulation = self.engine.run(
                sweep_rank_program, nranks=self.decomp.nranks,
                program_args=(self.deck, self.decomp, self.config),
                program_kwargs={"costs": self.costs, "shared": self.shared},
                noise=noise)
            self.last_execution = "engine"
        self.runs += 1
        summaries = [value for value in simulation.return_values]
        return Sweep3DRunResult(deck=self.deck, px=self.px, py=self.py,
                                simulation=simulation, rank_summaries=summaries)
