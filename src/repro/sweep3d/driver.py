"""One-call drivers for serial and simulated-parallel SWEEP3D runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import DecompositionError
from repro.simmpi.engine import ClusterEngine, SimulationResult
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology
from repro.simproc.processor import ProcessorModel
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.parallel import (
    ParallelSweepConfig,
    make_decomposition,
    sweep_rank_program,
)
from repro.sweep3d.serial import SerialSolveResult, SerialSweepSolver


@dataclass
class Sweep3DRunResult:
    """Outcome of a simulated parallel SWEEP3D run."""

    deck: Sweep3DInput
    px: int
    py: int
    simulation: SimulationResult
    rank_summaries: list[dict[str, Any]] = field(default_factory=list)

    @property
    def elapsed_time(self) -> float:
        """Simulated wall-clock time of the run (the paper's "Measurement" column)."""
        return self.simulation.elapsed_time

    @property
    def nranks(self) -> int:
        return self.px * self.py

    @property
    def iterations(self) -> int:
        return self.rank_summaries[0]["iterations"] if self.rank_summaries else 0

    @property
    def error_history(self) -> list[float]:
        return self.rank_summaries[0]["error_history"] if self.rank_summaries else []

    @property
    def total_messages(self) -> int:
        return self.simulation.traffic.messages

    def global_flux(self) -> np.ndarray | None:
        """Assemble the global scalar flux from numeric-mode rank outputs."""
        if not self.rank_summaries or self.rank_summaries[0]["phi_local"] is None:
            return None
        phi = np.zeros((self.deck.it, self.deck.jt, self.deck.kt))
        for summary in self.rank_summaries:
            local = summary["local_grid"]
            phi[local.i0:local.i0 + local.nx,
                local.j0:local.j0 + local.ny, :] = summary["phi_local"]
        return phi

    def compute_fraction(self) -> float:
        """Average fraction of rank time spent computing (vs communicating/waiting)."""
        ranks = self.simulation.ranks
        if not ranks:
            return 0.0
        return float(np.mean([r.compute_time / r.finish_time if r.finish_time > 0 else 0.0
                              for r in ranks]))


def run_serial_sweep(deck: Sweep3DInput, max_iterations: int | None = None,
                     require_convergence: bool = False) -> SerialSolveResult:
    """Solve ``deck`` with the single-process reference solver."""
    return SerialSweepSolver(deck).solve(max_iterations=max_iterations,
                                         require_convergence=require_convergence)


def run_parallel_sweep(deck: Sweep3DInput,
                       px: int,
                       py: int,
                       topology: ClusterTopology,
                       processor: ProcessorModel | None = None,
                       noise: NoiseModel | None = None,
                       numeric: bool = False,
                       charge_compute: bool = True,
                       convergence_collectives: bool = True) -> Sweep3DRunResult:
    """Run the pipelined parallel sweep on a simulated cluster.

    Parameters
    ----------
    deck:
        Problem definition.
    px, py:
        Logical processor array dimensions (``px * py`` ranks are simulated).
    topology:
        Simulated cluster interconnect/node layout.
    processor:
        Processor model used to charge per-block compute time.  Required
        unless ``charge_compute`` is false.
    noise:
        OS/network noise model (defaults to none — deterministic run).
    numeric:
        Whether to perform real flux arithmetic (small grids only).
    charge_compute:
        Whether to charge modelled compute time per block.
    convergence_collectives:
        Whether to perform the per-iteration global reductions.
    """
    if charge_compute and processor is None:
        raise DecompositionError(
            "run_parallel_sweep needs a processor model when charge_compute=True")
    decomp = make_decomposition(deck, px, py)
    config = ParallelSweepConfig(numeric=numeric, charge_compute=charge_compute,
                                 convergence_collectives=convergence_collectives)
    engine = ClusterEngine(topology, processor=processor, noise=noise)
    simulation = engine.run(sweep_rank_program, nranks=decomp.nranks,
                            program_args=(deck, decomp, config))
    summaries = [value for value in simulation.return_values]
    return Sweep3DRunResult(deck=deck, px=px, py=py, simulation=simulation,
                            rank_summaries=summaries)
