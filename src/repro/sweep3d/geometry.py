"""Grids, octants and the 2-D (KBA) domain decomposition of SWEEP3D.

The global spatial grid has ``it x jt x kt`` cells.  It is decomposed over a
``Px x Py`` logical processor array in the i and j directions only (Figure 1
of the paper); every processor holds the full k extent.  Sweeps originate
from the eight corners of the spatial domain — one octant of angles per
corner — and are processed in a fixed order that pipelines pairs of octants
that share a corner of the 2-D processor array.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DecompositionError
from repro.simmpi.cart import Cart2D


@dataclass(frozen=True)
class GlobalGrid:
    """The global spatial grid and cell sizes."""

    it: int
    jt: int
    kt: int
    dx: float = 1.0
    dy: float = 1.0
    dz: float = 1.0

    def __post_init__(self) -> None:
        if min(self.it, self.jt, self.kt) < 1:
            raise DecompositionError("grid dimensions must all be >= 1")
        if min(self.dx, self.dy, self.dz) <= 0:
            raise DecompositionError("cell sizes must all be positive")

    @property
    def total_cells(self) -> int:
        """Number of cells in the global grid."""
        return self.it * self.jt * self.kt

    @property
    def volume(self) -> float:
        """Physical volume of the domain."""
        return self.total_cells * self.dx * self.dy * self.dz


@dataclass(frozen=True)
class LocalGrid:
    """The sub-grid owned by one processor."""

    rank: int
    i0: int
    j0: int
    nx: int
    ny: int
    kt: int

    @property
    def cells(self) -> int:
        """Number of cells owned by this processor."""
        return self.nx * self.ny * self.kt

    def __post_init__(self) -> None:
        if self.nx < 1 or self.ny < 1 or self.kt < 1:
            raise DecompositionError(
                f"rank {self.rank}: empty local grid {self.nx}x{self.ny}x{self.kt}; "
                "use fewer processors or a larger problem")


def _block_split(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``total`` cells into ``parts`` contiguous blocks (offset, count)."""
    if parts < 1:
        raise DecompositionError("number of parts must be >= 1")
    if parts > total:
        raise DecompositionError(
            f"cannot split {total} cells over {parts} processors")
    base, extra = divmod(total, parts)
    blocks = []
    offset = 0
    for p in range(parts):
        count = base + (1 if p < extra else 0)
        blocks.append((offset, count))
        offset += count
    return blocks


@dataclass(frozen=True)
class Decomposition:
    """Mapping of the global grid onto a ``Px x Py`` processor array."""

    grid: GlobalGrid
    cart: Cart2D

    @property
    def px(self) -> int:
        return self.cart.px

    @property
    def py(self) -> int:
        return self.cart.py

    @property
    def nranks(self) -> int:
        return self.cart.size

    def local_grid(self, rank: int) -> LocalGrid:
        """The sub-grid owned by ``rank``."""
        i_index, j_index = self.cart.coords(rank)
        i_blocks = _block_split(self.grid.it, self.px)
        j_blocks = _block_split(self.grid.jt, self.py)
        i0, nx = i_blocks[i_index]
        j0, ny = j_blocks[j_index]
        return LocalGrid(rank=rank, i0=i0, j0=j0, nx=nx, ny=ny, kt=self.grid.kt)

    def local_grids(self) -> list[LocalGrid]:
        """All per-rank sub-grids, indexed by rank."""
        return [self.local_grid(rank) for rank in range(self.nranks)]

    def max_local_cells(self) -> int:
        """Cells on the most heavily loaded processor."""
        return max(grid.cells for grid in self.local_grids())

    def is_balanced(self) -> bool:
        """Whether every processor owns the same number of cells."""
        cells = {grid.cells for grid in self.local_grids()}
        return len(cells) == 1

    def validate(self) -> None:
        """Raise :class:`DecompositionError` if the decomposition is infeasible."""
        if self.px > self.grid.it:
            raise DecompositionError(
                f"Px={self.px} exceeds the number of i cells ({self.grid.it})")
        if self.py > self.grid.jt:
            raise DecompositionError(
                f"Py={self.py} exceeds the number of j cells ({self.grid.jt})")


@dataclass(frozen=True)
class Octant:
    """One of the eight sweep octants.

    ``idir``/``jdir``/``kdir`` are the signs of the direction cosines of the
    octant's ordinates along i, j and k; the sweep travels *with* the
    particles, so an octant with ``idir=+1`` starts at the low-i face.
    """

    index: int
    idir: int
    jdir: int
    kdir: int

    def __post_init__(self) -> None:
        if self.idir not in (-1, 1) or self.jdir not in (-1, 1) or self.kdir not in (-1, 1):
            raise DecompositionError("octant direction signs must be +1 or -1")

    @property
    def corner(self) -> tuple[int, int]:
        """Logical corner of the processor array where this octant's sweep starts.

        Returns (0 or 1, 0 or 1): 0 means the low end of that dimension.
        """
        return (0 if self.idir > 0 else 1, 0 if self.jdir > 0 else 1)


def octant_order() -> list[Octant]:
    """The eight octants in SWEEP3D processing order.

    The sweeps are organised as four *octant pairs*; the two octants of a
    pair share the same (i, j) corner of the processor array and differ only
    in the k direction, so the second octant of a pair follows the first
    through the pipeline with no additional fill delay.  The corner order
    follows the original code's ``jkq`` loop: both j-negative corners first,
    then both j-positive corners, alternating the i direction.
    """
    directions = [
        (-1, -1), (+1, -1),   # j-negative corners
        (-1, +1), (+1, +1),   # j-positive corners
    ]
    octants = []
    index = 0
    for idir, jdir in directions:
        for kdir in (-1, +1):
            octants.append(Octant(index=index, idir=idir, jdir=jdir, kdir=kdir))
            index += 1
    return octants


def octant_pairs() -> list[tuple[Octant, Octant]]:
    """The four octant pairs in processing order."""
    ordered = octant_order()
    return [(ordered[i], ordered[i + 1]) for i in range(0, 8, 2)]
