"""SWEEP3D input decks.

The original benchmark reads a small fixed-format input file defining the
grid size, blocking factors, quadrature order and convergence control.
Here the same parameters live in a :class:`Sweep3DInput` dataclass, with a
keyword-style text format for file-based decks and helpers that construct
the configurations used in the paper:

* the weak-scaling validation runs — 50x50x50 cells *per processor*,
  ``mk = 10``, 12 iterations (Tables 1-3);
* the speculative ASCI-target problems — 20 million cells (5x5x100 per
  processor) and 1 billion cells (25x25x200 per processor), ``mk = 10``,
  ``mmi = 3`` (Figures 8-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import InputDeckError
from repro.sweep3d.geometry import GlobalGrid
from repro.sweep3d.quadrature import LevelSymmetricQuadrature


@dataclass(frozen=True)
class Sweep3DInput:
    """Complete problem definition for a SWEEP3D run.

    Parameters mirror the original code: ``it/jt/kt`` are the global cell
    counts, ``mk`` is the k-plane blocking factor, ``mmi`` the angle
    blocking factor, ``sn`` the quadrature order (S_N), ``epsi`` the
    convergence tolerance of the source iteration and ``max_iterations``
    the iteration cap (the paper's runs always execute 12 iterations).
    """

    it: int = 50
    jt: int = 50
    kt: int = 50
    mk: int = 10
    mmi: int = 3
    sn: int = 6
    epsi: float = 1e-6
    max_iterations: int = 12
    dx: float = 1.0
    dy: float = 1.0
    dz: float = 1.0
    #: Total macroscopic cross section (absorption + scattering), per cell unit.
    sigma_t: float = 1.0
    #: Scattering cross section (isotropic).
    sigma_s: float = 0.5
    #: Uniform fixed (external) source strength.
    fixed_source: float = 1.0
    #: Whether to apply the negative-flux fixup in the kernel.
    flux_fixup: bool = True
    #: Free-form label used in reports.
    label: str = field(default="", compare=False)

    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if min(self.it, self.jt, self.kt) < 1:
            raise InputDeckError("grid dimensions it/jt/kt must be >= 1")
        if self.mk < 1:
            raise InputDeckError("mk (k-plane blocking factor) must be >= 1")
        if self.mmi < 1:
            raise InputDeckError("mmi (angle blocking factor) must be >= 1")
        if self.max_iterations < 1:
            raise InputDeckError("max_iterations must be >= 1")
        if self.epsi <= 0:
            raise InputDeckError("epsi must be positive")
        if self.sigma_t <= 0:
            raise InputDeckError("sigma_t must be positive")
        if self.sigma_s < 0:
            raise InputDeckError("sigma_s must be >= 0")
        if self.sigma_s >= self.sigma_t:
            raise InputDeckError(
                "sigma_s must be < sigma_t for a convergent source iteration")
        # Validate the quadrature order eagerly so bad decks fail fast.
        LevelSymmetricQuadrature(self.sn)

    # -- derived quantities ----------------------------------------------

    def grid(self) -> GlobalGrid:
        """The global spatial grid."""
        return GlobalGrid(self.it, self.jt, self.kt, self.dx, self.dy, self.dz)

    def quadrature(self) -> LevelSymmetricQuadrature:
        """The angular quadrature set."""
        return LevelSymmetricQuadrature(self.sn)

    @property
    def total_cells(self) -> int:
        """Number of cells in the global grid."""
        return self.it * self.jt * self.kt

    @property
    def angles_per_octant(self) -> int:
        return self.quadrature().angles_per_octant

    @property
    def n_k_blocks(self) -> int:
        """Number of k-plane blocks per octant sweep."""
        return -(-self.kt // self.mk)

    @property
    def n_angle_blocks(self) -> int:
        """Number of angle blocks per octant sweep."""
        return self.quadrature().n_angle_blocks(self.mmi)

    @property
    def blocks_per_iteration(self) -> int:
        """Pipeline stages of work per processor per iteration (8 octants)."""
        return 8 * self.n_k_blocks * self.n_angle_blocks

    def cells_per_processor(self, px: int, py: int) -> float:
        """Average cells per processor for a ``px x py`` decomposition."""
        return self.total_cells / float(px * py)

    def describe(self) -> str:
        label = f" [{self.label}]" if self.label else ""
        return (f"SWEEP3D{label}: {self.it}x{self.jt}x{self.kt} cells, S{self.sn}, "
                f"mk={self.mk}, mmi={self.mmi}, {self.max_iterations} iterations")

    # -- constructors -----------------------------------------------------

    @classmethod
    def weak_scaled(cls, cells_per_proc: tuple[int, int, int], px: int, py: int,
                    **overrides) -> "Sweep3DInput":
        """Build a deck with a fixed per-processor sub-grid (weak scaling).

        ``cells_per_proc`` is the (nx, ny, nz) sub-grid owned by each
        processor; the global grid is ``(nx*px, ny*py, nz)`` as in the
        paper's validation tables and speculative study.
        """
        nx, ny, nz = cells_per_proc
        if min(nx, ny, nz) < 1 or px < 1 or py < 1:
            raise InputDeckError("cells_per_proc and processor counts must be >= 1")
        return cls(it=nx * px, jt=ny * py, kt=nz, **overrides)

    def scaled_to(self, px: int, py: int, cells_per_proc: tuple[int, int, int]) -> "Sweep3DInput":
        """Return a copy re-dimensioned for a different processor array."""
        nx, ny, nz = cells_per_proc
        return replace(self, it=nx * px, jt=ny * py, kt=nz)


# ---------------------------------------------------------------------------
# Named decks
# ---------------------------------------------------------------------------


_STANDARD_DECKS = {
    # The validation configuration of Tables 1-3: 50^3 cells per processor.
    "validation": dict(mk=10, mmi=3, sn=6, max_iterations=12),
    # Section 6: the 20-million-cell ASCI problem, 5x5x100 cells/processor.
    "asci-20m": dict(kt=100, mk=10, mmi=3, sn=6, max_iterations=12),
    # Section 6: the 1-billion-cell ASCI problem, 25x25x200 cells/processor.
    "asci-1b": dict(kt=200, mk=10, mmi=3, sn=6, max_iterations=12),
    # A small deck usable for numeric runs in tests and examples.
    "mini": dict(it=8, jt=8, kt=8, mk=4, mmi=3, sn=6, max_iterations=4),
}

#: Per-processor sub-grid associated with each named deck (nx, ny, nz).
STANDARD_CELLS_PER_PROC = {
    "validation": (50, 50, 50),
    "asci-20m": (5, 5, 100),
    "asci-1b": (25, 25, 200),
    "mini": (4, 4, 8),
}


def standard_deck(name: str, px: int = 1, py: int = 1, **overrides) -> Sweep3DInput:
    """Instantiate one of the named decks for a ``px x py`` processor array.

    ``overrides`` are passed through to :class:`Sweep3DInput` (e.g.
    ``max_iterations=2`` to shorten a test run).
    """
    key = name.lower()
    if key not in _STANDARD_DECKS:
        raise InputDeckError(
            f"unknown standard deck {name!r}; available: {sorted(_STANDARD_DECKS)}")
    params = dict(_STANDARD_DECKS[key])
    params.update(overrides)
    nx, ny, nz = STANDARD_CELLS_PER_PROC[key]
    params.setdefault("label", key)
    params.setdefault("it", nx * px)
    params.setdefault("jt", ny * py)
    params.setdefault("kt", nz)
    return Sweep3DInput(**params)


# ---------------------------------------------------------------------------
# Text decks
# ---------------------------------------------------------------------------

_INT_KEYS = {"it", "jt", "kt", "mk", "mmi", "sn", "max_iterations"}
_FLOAT_KEYS = {"epsi", "dx", "dy", "dz", "sigma_t", "sigma_s", "fixed_source"}
_BOOL_KEYS = {"flux_fixup"}
_STR_KEYS = {"label"}


def parse_input_deck(text: str) -> Sweep3DInput:
    """Parse a keyword-style SWEEP3D input deck.

    The format is one ``key = value`` pair per line; ``#`` or ``!`` start a
    comment.  Unknown keys raise :class:`~repro.errors.InputDeckError` so
    typos are caught rather than silently ignored.

    >>> deck = parse_input_deck('''
    ... it = 100      # global i cells
    ... jt = 100
    ... kt = 50
    ... mk = 10
    ... ''')
    >>> deck.it, deck.mk
    (100, 10)
    """
    values: dict[str, object] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("!", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise InputDeckError(f"line {lineno}: expected 'key = value', got {raw!r}")
        key, _, value = line.partition("=")
        key = key.strip().lower()
        value = value.strip()
        try:
            if key in _INT_KEYS:
                values[key] = int(value)
            elif key in _FLOAT_KEYS:
                values[key] = float(value)
            elif key in _BOOL_KEYS:
                values[key] = value.lower() in ("1", "true", "yes", "on")
            elif key in _STR_KEYS:
                values[key] = value
            else:
                raise InputDeckError(f"line {lineno}: unknown input key {key!r}")
        except ValueError as exc:
            raise InputDeckError(f"line {lineno}: bad value for {key!r}: {value!r}") from exc
    return Sweep3DInput(**values)


def format_input_deck(deck: Sweep3DInput) -> str:
    """Serialise a deck back to the keyword text format (round-trips with parse)."""
    lines = ["# SWEEP3D input deck"]
    for key in sorted(_INT_KEYS | _FLOAT_KEYS | _BOOL_KEYS | _STR_KEYS):
        value = getattr(deck, key)
        if key in _STR_KEYS and not value:
            continue
        lines.append(f"{key} = {value}")
    return "\n".join(lines) + "\n"
