"""The serial SWEEP3D compute kernel and its operation-count characterisation.

Two views of the same kernel live here:

* :meth:`SweepKernel.sweep_block` — a *numeric* diamond-difference sweep of
  one (k-block, angle-block) of cells, used by the serial and parallel
  solvers when physical answers are wanted (tests, small examples).  It
  implements the standard balance + diamond auxiliary relations with an
  optional negative-flux fixup and accumulates the scalar flux.

* :meth:`SweepKernel.cell_mix` / :meth:`SweepKernel.block_mix` — the
  *characterisation* of the original C kernel as an operation tally (the
  clc flow description of the paper).  The counts correspond to the full
  LANL kernel — including the P1 flux-moment accumulation and the DSA face
  currents that the production code computes — and therefore slightly
  exceed what the simplified numeric Python kernel executes.  The bundled C
  source analysed by ``capp`` (``repro/core/resources/csrc/sweep_kernel.c``)
  matches these counts; tests assert that agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.errors import Sweep3DError
from repro.simproc.opcodes import OperationMix
from repro.sweep3d.geometry import Octant
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.quadrature import OctantAngles

#: Floating point (and bookkeeping) operations per cell per angle in the
#: original kernel, as extracted by ``capp`` from the C source and verified
#: by profiling.  Keys are PACE clc mnemonics.
CELL_ANGLE_OPERATIONS: dict[str, float] = {
    "AFDG": 16.0,   # floating point add/subtract
    "MFDG": 19.0,   # floating point multiply
    "DFDG": 1.0,    # floating point divide
    "LDDG": 14.0,   # double loads surviving register reuse (profiled)
    "STDG": 7.0,    # double stores
    "INTG": 8.0,    # integer/address arithmetic
    "IFBR": 3.0,    # conditional branches (flux fixup tests)
    "LFOR": 0.25,   # amortised loop start-up
}

#: Per-cell operations of the per-iteration scattering-source update
#: (``source_update`` in the bundled C source; the ``source`` subtask object).
CELL_SOURCE_OPERATIONS: dict[str, float] = {
    "AFDG": 1.0, "MFDG": 1.0, "LDDG": 1.0, "STDG": 1.0, "INTG": 2.0, "IFBR": 1.0,
}

#: Per-cell operations of the per-iteration convergence test (``flux_error``
#: in the bundled C source; the ``flux_err`` subtask object).
CELL_FLUX_ERR_OPERATIONS: dict[str, float] = {
    "AFDG": 3.0, "DFDG": 1.0, "LDDG": 2.0, "STDG": 1.0, "INTG": 2.0, "IFBR": 2.0,
}

#: Per-cell operations of the particle-balance edit (the ``balance`` subtask).
CELL_BALANCE_OPERATIONS: dict[str, float] = {
    "AFDG": 1.0, "LDDG": 1.0, "INTG": 1.0, "IFBR": 1.0,
}

#: Number of double-precision arrays the sweep streams over per cell
#: (angular flux workspace, scalar flux + moments, source, cross sections).
WORKING_SET_ARRAYS = 6


@dataclass
class BlockResult:
    """Outgoing fluxes and tallies produced by one block sweep."""

    #: Outgoing angular flux on the downstream i face: shape (ny, nk, na).
    psi_out_i: np.ndarray
    #: Outgoing angular flux on the downstream j face: shape (nx, nk, na).
    psi_out_j: np.ndarray
    #: Outgoing angular flux on the downstream k face: shape (nx, ny, na).
    psi_out_k: np.ndarray
    #: Weighted outflow (leakage) through the block's downstream faces.
    leakage: float = 0.0
    #: Number of negative-flux fixups applied.
    fixups: int = 0


@dataclass
class SweepKernel:
    """Serial kernel bound to one problem definition."""

    deck: Sweep3DInput
    #: Count of cells processed by :meth:`sweep_block` (diagnostics).
    cells_swept: int = field(default=0, init=False)

    # ------------------------------------------------------------------
    # Characterisation (clc) view
    # ------------------------------------------------------------------

    @classmethod
    def cell_mix(cls) -> OperationMix:
        """Operation mix of a single cell/angle update of the original kernel."""
        return OperationMix.from_mnemonics(CELL_ANGLE_OPERATIONS)

    @classmethod
    def flops_per_cell_angle(cls) -> float:
        """Floating point operations per cell per angle (the paper's grind size)."""
        return cls.cell_mix().flops

    @staticmethod
    def working_set_bytes(nx: int, ny: int, nz: int) -> float:
        """Bytes streamed per full sweep of an ``nx x ny x nz`` sub-domain."""
        return float(WORKING_SET_ARRAYS * nx * ny * nz * units.DOUBLE_BYTES)

    @classmethod
    def block_mix(cls, nx: int, ny: int, nk: int, n_angles: int,
                  working_set_bytes: float | None = None) -> OperationMix:
        """Operation mix of one (k-block, angle-block) sweep over an i-j sub-domain."""
        cells = nx * ny * nk * n_angles
        if working_set_bytes is None:
            working_set_bytes = cls.working_set_bytes(nx, ny, nk)
        return cls.cell_mix().scaled(cells, working_set_bytes=working_set_bytes)

    @classmethod
    def source_mix(cls, cells: int, working_set_bytes: float = 0.0) -> OperationMix:
        """Operation mix of the per-iteration scattering-source update over ``cells``."""
        return OperationMix.from_mnemonics(CELL_SOURCE_OPERATIONS).scaled(
            cells, working_set_bytes=working_set_bytes)

    @classmethod
    def flux_err_mix(cls, cells: int, working_set_bytes: float = 0.0) -> OperationMix:
        """Operation mix of the per-iteration convergence test over ``cells``."""
        return OperationMix.from_mnemonics(CELL_FLUX_ERR_OPERATIONS).scaled(
            cells, working_set_bytes=working_set_bytes)

    @classmethod
    def balance_mix(cls, cells: int, working_set_bytes: float = 0.0) -> OperationMix:
        """Operation mix of the particle-balance edit over ``cells``."""
        return OperationMix.from_mnemonics(CELL_BALANCE_OPERATIONS).scaled(
            cells, working_set_bytes=working_set_bytes)

    def local_sweep_mix(self, nx: int, ny: int) -> OperationMix:
        """Operation mix of one full iteration's sweeps on one processor.

        Covers all 8 octants and every angle of the quadrature over the
        processor's ``nx x ny x kt`` sub-domain, with the working set of the
        full sub-domain (the quantity the PAPI-substitute profiler measures
        the achieved flop rate against).
        """
        total_angles = self.deck.quadrature().total_angles
        cells = nx * ny * self.deck.kt
        return self.cell_mix().scaled(
            cells * total_angles,
            working_set_bytes=self.working_set_bytes(nx, ny, self.deck.kt))

    # ------------------------------------------------------------------
    # Numeric view
    # ------------------------------------------------------------------

    def sweep_block(self,
                    octant: Octant,
                    angles: OctantAngles,
                    k_planes: np.ndarray,
                    q_block: np.ndarray,
                    psi_in_i: np.ndarray,
                    psi_in_j: np.ndarray,
                    psi_in_k: np.ndarray,
                    phi_accum: np.ndarray) -> BlockResult:
        """Sweep one block of cells for one octant and angle block.

        Parameters
        ----------
        octant:
            The sweep octant (defines traversal direction in i, j, k).
        angles:
            The ordinates of this angle block (positive cosines).
        k_planes:
            Global k indices of the planes in this block, in traversal
            order (ascending for ``kdir=+1``, descending for ``kdir=-1``).
        q_block:
            Isotropic total source for the local sub-domain, shape
            ``(nx, ny, kt)`` — indexed with the global-ordered k index.
        psi_in_i:
            Incoming angular flux on the upstream i face, shape
            ``(ny, nk, na)`` where ``nk = len(k_planes)``.
        psi_in_j:
            Incoming angular flux on the upstream j face, shape
            ``(nx, nk, na)``.
        psi_in_k:
            Incoming angular flux on the upstream k face (from the previous
            k block of this octant/angle block), shape ``(nx, ny, na)``.
        phi_accum:
            Scalar flux accumulator, shape ``(nx, ny, kt)``; updated in place.

        Returns
        -------
        BlockResult
            The outgoing face fluxes (to be sent downstream / carried to the
            next k block) and tallies.
        """
        deck = self.deck
        nx, ny, kt = q_block.shape
        nk = len(k_planes)
        na = angles.n_angles
        self._check_shapes(psi_in_i, psi_in_j, psi_in_k, nx, ny, nk, na)

        eps_i = 2.0 * angles.mu / deck.dx          # (na,)
        eps_j = 2.0 * angles.eta / deck.dy
        eps_k = 2.0 * angles.xi / deck.dz
        denom = deck.sigma_t + eps_i + eps_j + eps_k
        inv_denom = 1.0 / denom
        weights = angles.weight

        i_range = range(nx) if octant.idir > 0 else range(nx - 1, -1, -1)
        j_range = range(ny) if octant.jdir > 0 else range(ny - 1, -1, -1)

        psi_out_i = np.array(psi_in_i, dtype=float, copy=True)
        psi_out_j = np.array(psi_in_j, dtype=float, copy=True)
        psi_k_face = np.array(psi_in_k, dtype=float, copy=True)   # (nx, ny, na)

        fixups = 0
        leakage = 0.0

        for i in i_range:
            for j in j_range:
                pin_k = psi_k_face[i, j, :]                       # (na,)
                for kk, k_global in enumerate(k_planes):
                    pin_i = psi_out_i[j, kk, :]
                    pin_j = psi_out_j[i, kk, :]
                    numer = (q_block[i, j, k_global]
                             + eps_i * pin_i + eps_j * pin_j + eps_k * pin_k)
                    psi = numer * inv_denom
                    out_i = 2.0 * psi - pin_i
                    out_j = 2.0 * psi - pin_j
                    out_k = 2.0 * psi - pin_k
                    if deck.flux_fixup:
                        negative = (out_i < 0.0) | (out_j < 0.0) | (out_k < 0.0)
                        count = int(np.count_nonzero(negative))
                        if count:
                            fixups += count
                            out_i = np.maximum(out_i, 0.0)
                            out_j = np.maximum(out_j, 0.0)
                            out_k = np.maximum(out_k, 0.0)
                    phi_accum[i, j, k_global] += float(np.dot(weights, psi))
                    psi_out_i[j, kk, :] = out_i
                    psi_out_j[i, kk, :] = out_j
                    pin_k = out_k
                psi_k_face[i, j, :] = pin_k
        self.cells_swept += nx * ny * nk

        # Leakage through the downstream faces of this block (weighted by the
        # projected area of each face per ordinate).
        face_i = psi_out_i * (angles.mu * weights)        # (ny, nk, na)
        face_j = psi_out_j * (angles.eta * weights)
        face_k = psi_k_face * (angles.xi * weights)
        leakage += float(face_i.sum()) * deck.dy * deck.dz
        leakage += float(face_j.sum()) * deck.dx * deck.dz
        leakage += float(face_k.sum()) * deck.dx * deck.dy

        return BlockResult(psi_out_i=psi_out_i, psi_out_j=psi_out_j,
                           psi_out_k=psi_k_face, leakage=leakage, fixups=fixups)

    @staticmethod
    def _check_shapes(psi_in_i: np.ndarray, psi_in_j: np.ndarray,
                      psi_in_k: np.ndarray, nx: int, ny: int, nk: int, na: int) -> None:
        if psi_in_i.shape != (ny, nk, na):
            raise Sweep3DError(
                f"psi_in_i has shape {psi_in_i.shape}, expected {(ny, nk, na)}")
        if psi_in_j.shape != (nx, nk, na):
            raise Sweep3DError(
                f"psi_in_j has shape {psi_in_j.shape}, expected {(nx, nk, na)}")
        if psi_in_k.shape != (nx, ny, na):
            raise Sweep3DError(
                f"psi_in_k has shape {psi_in_k.shape}, expected {(nx, ny, na)}")

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def k_blocks(self) -> list[np.ndarray]:
        """Global k-plane indices of each k block, in ascending-k order."""
        kt, mk = self.deck.kt, self.deck.mk
        return [np.arange(start, min(start + mk, kt)) for start in range(0, kt, mk)]

    def k_blocks_for_octant(self, octant: Octant) -> list[np.ndarray]:
        """k blocks in the traversal order of ``octant`` (planes ordered too)."""
        blocks = self.k_blocks()
        if octant.kdir > 0:
            return blocks
        return [block[::-1] for block in reversed(blocks)]
