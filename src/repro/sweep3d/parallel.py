"""The KBA pipelined parallel SWEEP3D solver as a simulated-MPI rank program.

Each rank owns an ``nx x ny`` column of the grid (full k extent).  For every
octant, angle block and k block it

1. receives the incoming i-face flux from its upstream i neighbour and the
   incoming j-face flux from its upstream j neighbour (blocking receives,
   exactly as the original code's ``MPI_Recv`` calls),
2. sweeps the block of cells,
3. sends its outgoing faces to the downstream neighbours (blocking sends).

At the end of every source iteration the ranks perform a global maximum of
the local flux-change error (the model's ``globalmax`` parallel template)
and a global sum of the boundary leakage (the ``globalsum`` template).

Two compute modes are supported:

``numeric``
    The kernel really computes fluxes; payloads carry the face arrays.  Used
    for physics validation on small grids.

``modelled``
    No arithmetic is performed; messages carry only their byte counts and
    compute time is charged from the kernel's operation-mix characterisation
    through the engine's processor model.  Used for the large validation and
    speculative configurations, where the virtual cluster acts purely as a
    timing instrument (this is the substitution documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import DecompositionError
from repro.simmpi.cart import Cart2D
from repro.simmpi.communicator import SimComm
from repro.simmpi.operations import ReduceOp
from repro.sweep3d.geometry import Decomposition, Octant, octant_order
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.kernel import SweepKernel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simproc.processor import ProcessorModel

#: Message tags used by the sweep exchanges (east-west and north-south).
TAG_EW = 100
TAG_NS = 101


class SweepCostTable:
    """Memoised compute-charge durations for the modelled sweep.

    The rank program charges four kinds of modelled compute — the per-block
    sweep, the per-iteration source update, the convergence test and the
    particle-balance edit.  Each duration is a pure function of the block
    shape and the processor model, yet the per-point path rebuilds the
    operation mix and re-prices it for **every** block of every rank of
    every iteration.  A cost table prices each distinct shape once and is
    shared across all ranks of a run — and, held by a
    :class:`~repro.experiments.backends.SimulationBackend`, across every
    point of a scenario grid evaluated on the same processor model.

    The returned seconds are exactly ``processor.execute_time(mix)``, so
    runs charged through a cost table are bit-identical to the per-block
    path.
    """

    __slots__ = ("processor", "hits", "misses", "_cache")

    def __init__(self, processor: "ProcessorModel"):
        self.processor = processor
        self.hits = 0
        self.misses = 0
        self._cache: dict[tuple, float] = {}

    def _seconds(self, key: tuple, build_mix: Callable[[], object]) -> float:
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            value = self._cache[key] = self.processor.execute_time(build_mix())
        else:
            self.hits += 1
        return value

    def block_seconds(self, nx: int, ny: int, nk: int, na: int,
                      working_set_bytes: float) -> float:
        """Duration of one (k-block, angle-block) sweep of ``nx x ny x nk`` cells."""
        return self._seconds(
            ("block", nx, ny, nk, na, working_set_bytes),
            lambda: SweepKernel.block_mix(nx, ny, nk, na,
                                          working_set_bytes=working_set_bytes))

    def source_seconds(self, cells: int, working_set_bytes: float) -> float:
        """Duration of the per-iteration scattering-source update."""
        return self._seconds(("source", cells, working_set_bytes),
                             lambda: SweepKernel.source_mix(cells, working_set_bytes))

    def flux_err_seconds(self, cells: int, working_set_bytes: float) -> float:
        """Duration of the per-iteration convergence test."""
        return self._seconds(("flux_err", cells, working_set_bytes),
                             lambda: SweepKernel.flux_err_mix(cells, working_set_bytes))

    def balance_seconds(self, cells: int, working_set_bytes: float) -> float:
        """Duration of the particle-balance edit."""
        return self._seconds(("balance", cells, working_set_bytes),
                             lambda: SweepKernel.balance_mix(cells, working_set_bytes))


@dataclass
class SweepPlanData:
    """Read-only per-deck data shared by every rank of a planned run.

    The per-point path rebuilds the quadrature, the angle blocking and the
    k-plane block lists inside every rank program (and the k blocks once
    per octant per angle block); a plan builds them once and hands the same
    immutable objects to all ranks.
    """

    quadrature: object
    angle_blocks: list
    #: k blocks in ascending-k traversal order (``kdir = +1``).
    k_blocks_up: list = field(default_factory=list)
    #: k blocks in descending-k traversal order (``kdir = -1``).
    k_blocks_down: list = field(default_factory=list)

    @classmethod
    def for_deck(cls, deck: Sweep3DInput) -> "SweepPlanData":
        kernel = SweepKernel(deck)
        quadrature = deck.quadrature()
        up = kernel.k_blocks()
        down = [block[::-1] for block in reversed(up)]
        return cls(quadrature=quadrature,
                   angle_blocks=quadrature.angle_blocks(deck.mmi),
                   k_blocks_up=up, k_blocks_down=down)

    def k_blocks(self, octant: Octant) -> list:
        """k blocks in the traversal order of ``octant``."""
        return self.k_blocks_up if octant.kdir > 0 else self.k_blocks_down


@dataclass(frozen=True)
class ParallelSweepConfig:
    """Options controlling the parallel solver.

    Parameters
    ----------
    numeric:
        Whether to perform the real flux arithmetic (otherwise the run is
        timing-only).
    charge_compute:
        Whether to charge modelled compute time for each block through the
        engine's processor model.  Disable only in pure message-pattern
        tests.
    convergence_collectives:
        Whether to perform the per-iteration ``globalmax``/``globalsum``
        collectives (the original code always does; disabling isolates the
        pipeline pattern in tests).
    """

    numeric: bool = True
    charge_compute: bool = True
    convergence_collectives: bool = True


def make_decomposition(deck: Sweep3DInput, px: int, py: int) -> Decomposition:
    """Build and validate the 2-D decomposition of ``deck`` over ``px x py`` ranks."""
    decomp = Decomposition(grid=deck.grid(), cart=Cart2D(px, py))
    decomp.validate()
    return decomp


def sweep_rank_program(comm: SimComm, deck: Sweep3DInput, decomp: Decomposition,
                       config: ParallelSweepConfig = ParallelSweepConfig(),
                       costs: SweepCostTable | None = None,
                       shared: SweepPlanData | None = None):
    """Generator rank program implementing the pipelined sweep.

    Returns (via ``StopIteration``) a per-rank summary dictionary with the
    local scalar flux (numeric mode), the per-iteration global error history
    and message statistics.

    ``costs`` and ``shared`` are supplied by a
    :class:`~repro.sweep3d.driver.SimulationPlan`: modelled compute is then
    charged from the memoised cost table (``comm.compute`` of a pre-priced
    duration instead of ``comm.execute`` of a freshly built operation mix)
    and the quadrature/blocking data is reused across ranks.  Both paths
    are bit-identical; without them the program is self-contained, exactly
    as the original code.
    """
    if decomp.nranks != comm.size:
        raise DecompositionError(
            f"decomposition expects {decomp.nranks} ranks, communicator has {comm.size}")
    cart = decomp.cart
    local = decomp.local_grid(comm.rank)
    nx, ny, kt = local.nx, local.ny, local.kt
    kernel = SweepKernel(deck)
    if shared is not None:
        quad = shared.quadrature
        angle_blocks = shared.angle_blocks
    else:
        quad = deck.quadrature()
        angle_blocks = quad.angle_blocks(deck.mmi)

    phi = np.zeros((nx, ny, kt)) if config.numeric else None
    error_history: list[float] = []
    leakage_history: list[float] = []
    blocks_swept = 0

    local_cells = nx * ny * kt
    local_working_set = kernel.working_set_bytes(nx, ny, kt)

    for iteration in range(deck.max_iterations):
        # Per-iteration scattering source update (the `source` subtask).
        if config.charge_compute:
            if costs is not None:
                yield comm.compute(costs.source_seconds(local_cells, local_working_set))
            else:
                yield comm.execute(kernel.source_mix(local_cells, local_working_set))
        if config.numeric:
            q_total = deck.sigma_s * phi + deck.fixed_source
            phi_new = np.zeros_like(phi)
        local_leakage = 0.0

        for octant in octant_order():
            up_i, up_j = cart.upstream(comm.rank, octant.idir, octant.jdir)
            dn_i, dn_j = cart.downstream(comm.rank, octant.idir, octant.jdir)
            k_blocks = (shared.k_blocks(octant) if shared is not None
                        else kernel.k_blocks_for_octant(octant))
            for angles in angle_blocks:
                na = angles.n_angles
                psi_k = np.zeros((nx, ny, na)) if config.numeric else None
                for k_planes in k_blocks:
                    nk = len(k_planes)
                    ew_bytes = float(ny * nk * na * 8)
                    ns_bytes = float(nx * nk * na * 8)

                    # --- receive incoming faces from upstream neighbours ---
                    if up_i is not None:
                        psi_i = yield comm.recv(source=up_i, tag=TAG_EW)
                        if config.numeric and psi_i is None:
                            psi_i = np.zeros((ny, nk, na))
                    else:
                        psi_i = np.zeros((ny, nk, na)) if config.numeric else None
                    if up_j is not None:
                        psi_j = yield comm.recv(source=up_j, tag=TAG_NS)
                        if config.numeric and psi_j is None:
                            psi_j = np.zeros((nx, nk, na))
                    else:
                        psi_j = np.zeros((nx, nk, na)) if config.numeric else None

                    # --- compute the block ---
                    if config.charge_compute:
                        if costs is not None:
                            yield comm.compute(costs.block_seconds(
                                nx, ny, nk, na, local_working_set))
                        else:
                            yield comm.execute(kernel.block_mix(
                                nx, ny, nk, na,
                                working_set_bytes=kernel.working_set_bytes(nx, ny, kt)))
                    if config.numeric:
                        result = kernel.sweep_block(
                            octant, angles, k_planes, q_total,
                            psi_i, psi_j, psi_k, phi_new)
                        psi_k = result.psi_out_k
                        out_i, out_j = result.psi_out_i, result.psi_out_j
                        local_leakage += _boundary_leakage(
                            result, angles, deck, dn_i, dn_j)
                    else:
                        out_i = out_j = None
                    blocks_swept += 1

                    # --- send outgoing faces downstream ---
                    if dn_i is not None:
                        yield comm.send(out_i, dest=dn_i, tag=TAG_EW, nbytes=ew_bytes)
                    if dn_j is not None:
                        yield comm.send(out_j, dest=dn_j, tag=TAG_NS, nbytes=ns_bytes)
                if config.numeric:
                    # Flux leaving through the k boundary of the domain.
                    local_leakage += float(
                        (psi_k * (angles.xi * angles.weight)).sum()) * deck.dx * deck.dy

        # --- per-iteration convergence / balance collectives ---
        if config.charge_compute:
            # Convergence test and particle-balance edit (the `flux_err` and
            # `balance` subtasks of the performance model).
            if costs is not None:
                yield comm.compute(costs.flux_err_seconds(local_cells, local_working_set))
                yield comm.compute(costs.balance_seconds(local_cells, local_working_set))
            else:
                yield comm.execute(kernel.flux_err_mix(local_cells, local_working_set))
                yield comm.execute(kernel.balance_mix(local_cells, local_working_set))
        if config.numeric:
            local_error = _flux_error(phi, phi_new)
            phi = phi_new
        else:
            local_error = 1.0 / (iteration + 1)
        if config.convergence_collectives:
            global_error = yield comm.allreduce(local_error, op="max")
            global_leakage = yield comm.allreduce(local_leakage, op="sum")
        else:
            global_error, global_leakage = local_error, local_leakage
        error_history.append(float(global_error))
        leakage_history.append(float(global_leakage))
        if config.numeric and global_error <= deck.epsi and iteration > 0:
            break

    return {
        "rank": comm.rank,
        "phi_local": phi,
        "local_grid": local,
        "error_history": error_history,
        "leakage_history": leakage_history,
        "blocks_swept": blocks_swept,
        "iterations": len(error_history),
    }


def modelled_rank_summaries(deck: Sweep3DInput, decomp: Decomposition,
                            config: ParallelSweepConfig = ParallelSweepConfig(),
                            shared: SweepPlanData | None = None) -> list[dict]:
    """The per-rank return values of a *modelled* sweep, without running it.

    For ``numeric=False`` runs :func:`sweep_rank_program` performs no flux
    arithmetic, so its return dictionary is a pure function of the deck
    shape and configuration: ``local_error`` is the ``1/(iteration+1)``
    placeholder, leakage stays zero, the convergence break never fires
    (it is gated on ``config.numeric``), and every iteration sweeps the
    same ``8 x angle_blocks x k_blocks`` block count.  The collectives are
    reproduced through the same :meth:`ReduceOp.combine` the engine and
    recorder use, so the values match bit for bit.

    Periodic capture (:mod:`repro.simmpi.capture` via
    :meth:`~repro.sweep3d.driver.SimulationPlan.compile_trace`) uses this
    to synthesize the return values of iterations it never drives — after
    cross-checking the function against a recorded prefix.
    """
    if config.numeric:
        raise ValueError(
            "modelled_rank_summaries is only valid for numeric=False runs")
    if shared is not None:
        angle_blocks = shared.angle_blocks
        k_block_count = len(shared.k_blocks_up)
    else:
        angle_blocks = deck.quadrature().angle_blocks(deck.mmi)
        k_block_count = len(SweepKernel(deck).k_blocks())
    nranks = decomp.nranks
    iterations = deck.max_iterations
    blocks_swept = iterations * 8 * len(angle_blocks) * k_block_count
    error_history: list[float] = []
    leakage_history: list[float] = []
    for iteration in range(iterations):
        local_error = 1.0 / (iteration + 1)
        local_leakage = 0.0
        if config.convergence_collectives:
            global_error = ReduceOp.MAX.combine([local_error] * nranks)
            global_leakage = ReduceOp.SUM.combine([local_leakage] * nranks)
        else:
            global_error, global_leakage = local_error, local_leakage
        error_history.append(float(global_error))
        leakage_history.append(float(global_leakage))
    return [{
        "rank": rank,
        "phi_local": None,
        "local_grid": decomp.local_grid(rank),
        "error_history": list(error_history),
        "leakage_history": list(leakage_history),
        "blocks_swept": blocks_swept,
        "iterations": iterations,
    } for rank in range(nranks)]


def _boundary_leakage(result, angles, deck: Sweep3DInput,
                      dn_i: int | None, dn_j: int | None) -> float:
    """Leakage through downstream i/j faces that lie on the global boundary."""
    leak = 0.0
    weights = angles.weight
    if dn_i is None:
        leak += float((result.psi_out_i * (angles.mu * weights)).sum()) * deck.dy * deck.dz
    if dn_j is None:
        leak += float((result.psi_out_j * (angles.eta * weights)).sum()) * deck.dx * deck.dz
    return leak


def _flux_error(phi_old: np.ndarray, phi_new: np.ndarray) -> float:
    scale = float(np.abs(phi_new).max())
    if scale == 0.0:
        return float("inf")
    return float(np.abs(phi_new - phi_old).max() / scale)
