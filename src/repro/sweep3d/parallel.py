"""The KBA pipelined parallel SWEEP3D solver as a simulated-MPI rank program.

Each rank owns an ``nx x ny`` column of the grid (full k extent).  For every
octant, angle block and k block it

1. receives the incoming i-face flux from its upstream i neighbour and the
   incoming j-face flux from its upstream j neighbour (blocking receives,
   exactly as the original code's ``MPI_Recv`` calls),
2. sweeps the block of cells,
3. sends its outgoing faces to the downstream neighbours (blocking sends).

At the end of every source iteration the ranks perform a global maximum of
the local flux-change error (the model's ``globalmax`` parallel template)
and a global sum of the boundary leakage (the ``globalsum`` template).

Two compute modes are supported:

``numeric``
    The kernel really computes fluxes; payloads carry the face arrays.  Used
    for physics validation on small grids.

``modelled``
    No arithmetic is performed; messages carry only their byte counts and
    compute time is charged from the kernel's operation-mix characterisation
    through the engine's processor model.  Used for the large validation and
    speculative configurations, where the virtual cluster acts purely as a
    timing instrument (this is the substitution documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DecompositionError
from repro.simmpi.cart import Cart2D
from repro.simmpi.communicator import SimComm
from repro.sweep3d.geometry import Decomposition, octant_order
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.kernel import SweepKernel

#: Message tags used by the sweep exchanges (east-west and north-south).
TAG_EW = 100
TAG_NS = 101


@dataclass(frozen=True)
class ParallelSweepConfig:
    """Options controlling the parallel solver.

    Parameters
    ----------
    numeric:
        Whether to perform the real flux arithmetic (otherwise the run is
        timing-only).
    charge_compute:
        Whether to charge modelled compute time for each block through the
        engine's processor model.  Disable only in pure message-pattern
        tests.
    convergence_collectives:
        Whether to perform the per-iteration ``globalmax``/``globalsum``
        collectives (the original code always does; disabling isolates the
        pipeline pattern in tests).
    """

    numeric: bool = True
    charge_compute: bool = True
    convergence_collectives: bool = True


def make_decomposition(deck: Sweep3DInput, px: int, py: int) -> Decomposition:
    """Build and validate the 2-D decomposition of ``deck`` over ``px x py`` ranks."""
    decomp = Decomposition(grid=deck.grid(), cart=Cart2D(px, py))
    decomp.validate()
    return decomp


def sweep_rank_program(comm: SimComm, deck: Sweep3DInput, decomp: Decomposition,
                       config: ParallelSweepConfig = ParallelSweepConfig()):
    """Generator rank program implementing the pipelined sweep.

    Returns (via ``StopIteration``) a per-rank summary dictionary with the
    local scalar flux (numeric mode), the per-iteration global error history
    and message statistics.
    """
    if decomp.nranks != comm.size:
        raise DecompositionError(
            f"decomposition expects {decomp.nranks} ranks, communicator has {comm.size}")
    cart = decomp.cart
    local = decomp.local_grid(comm.rank)
    nx, ny, kt = local.nx, local.ny, local.kt
    kernel = SweepKernel(deck)
    quad = deck.quadrature()
    angle_blocks = quad.angle_blocks(deck.mmi)

    phi = np.zeros((nx, ny, kt)) if config.numeric else None
    error_history: list[float] = []
    leakage_history: list[float] = []
    blocks_swept = 0

    local_cells = nx * ny * kt
    local_working_set = kernel.working_set_bytes(nx, ny, kt)

    for iteration in range(deck.max_iterations):
        # Per-iteration scattering source update (the `source` subtask).
        if config.charge_compute:
            yield comm.execute(kernel.source_mix(local_cells, local_working_set))
        if config.numeric:
            q_total = deck.sigma_s * phi + deck.fixed_source
            phi_new = np.zeros_like(phi)
        local_leakage = 0.0

        for octant in octant_order():
            up_i, up_j = cart.upstream(comm.rank, octant.idir, octant.jdir)
            dn_i, dn_j = cart.downstream(comm.rank, octant.idir, octant.jdir)
            for angles in angle_blocks:
                na = angles.n_angles
                psi_k = np.zeros((nx, ny, na)) if config.numeric else None
                for k_planes in kernel.k_blocks_for_octant(octant):
                    nk = len(k_planes)
                    ew_bytes = float(ny * nk * na * 8)
                    ns_bytes = float(nx * nk * na * 8)

                    # --- receive incoming faces from upstream neighbours ---
                    if up_i is not None:
                        psi_i = yield comm.recv(source=up_i, tag=TAG_EW)
                        if config.numeric and psi_i is None:
                            psi_i = np.zeros((ny, nk, na))
                    else:
                        psi_i = np.zeros((ny, nk, na)) if config.numeric else None
                    if up_j is not None:
                        psi_j = yield comm.recv(source=up_j, tag=TAG_NS)
                        if config.numeric and psi_j is None:
                            psi_j = np.zeros((nx, nk, na))
                    else:
                        psi_j = np.zeros((nx, nk, na)) if config.numeric else None

                    # --- compute the block ---
                    if config.charge_compute:
                        yield comm.execute(kernel.block_mix(
                            nx, ny, nk, na,
                            working_set_bytes=kernel.working_set_bytes(nx, ny, kt)))
                    if config.numeric:
                        result = kernel.sweep_block(
                            octant, angles, k_planes, q_total,
                            psi_i, psi_j, psi_k, phi_new)
                        psi_k = result.psi_out_k
                        out_i, out_j = result.psi_out_i, result.psi_out_j
                        local_leakage += _boundary_leakage(
                            result, angles, deck, dn_i, dn_j)
                    else:
                        out_i = out_j = None
                    blocks_swept += 1

                    # --- send outgoing faces downstream ---
                    if dn_i is not None:
                        yield comm.send(out_i, dest=dn_i, tag=TAG_EW, nbytes=ew_bytes)
                    if dn_j is not None:
                        yield comm.send(out_j, dest=dn_j, tag=TAG_NS, nbytes=ns_bytes)
                if config.numeric:
                    # Flux leaving through the k boundary of the domain.
                    local_leakage += float(
                        (psi_k * (angles.xi * angles.weight)).sum()) * deck.dx * deck.dy

        # --- per-iteration convergence / balance collectives ---
        if config.charge_compute:
            # Convergence test and particle-balance edit (the `flux_err` and
            # `balance` subtasks of the performance model).
            yield comm.execute(kernel.flux_err_mix(local_cells, local_working_set))
            yield comm.execute(kernel.balance_mix(local_cells, local_working_set))
        if config.numeric:
            local_error = _flux_error(phi, phi_new)
            phi = phi_new
        else:
            local_error = 1.0 / (iteration + 1)
        if config.convergence_collectives:
            global_error = yield comm.allreduce(local_error, op="max")
            global_leakage = yield comm.allreduce(local_leakage, op="sum")
        else:
            global_error, global_leakage = local_error, local_leakage
        error_history.append(float(global_error))
        leakage_history.append(float(global_leakage))
        if config.numeric and global_error <= deck.epsi and iteration > 0:
            break

    return {
        "rank": comm.rank,
        "phi_local": phi,
        "local_grid": local,
        "error_history": error_history,
        "leakage_history": leakage_history,
        "blocks_swept": blocks_swept,
        "iterations": len(error_history),
    }


def _boundary_leakage(result, angles, deck: Sweep3DInput,
                      dn_i: int | None, dn_j: int | None) -> float:
    """Leakage through downstream i/j faces that lie on the global boundary."""
    leak = 0.0
    weights = angles.weight
    if dn_i is None:
        leak += float((result.psi_out_i * (angles.mu * weights)).sum()) * deck.dy * deck.dz
    if dn_j is None:
        leak += float((result.psi_out_j * (angles.eta * weights)).sum()) * deck.dx * deck.dz
    return leak


def _flux_error(phi_old: np.ndarray, phi_new: np.ndarray) -> float:
    scale = float(np.abs(phi_new).max())
    if scale == 0.0:
        return float("inf")
    return float(np.abs(phi_new - phi_old).max() / scale)
