"""Level-symmetric S_N angular quadrature sets.

The discrete ordinates method replaces the continuous angular variable by a
finite set of directions (ordinates) with associated weights.  SWEEP3D uses
level-symmetric (LQ_N) sets; the default production configuration is S6,
i.e. 6 angles per octant, which with the paper's angle-blocking factor
``mmi = 3`` yields two angle blocks per octant.

The direction cosines and weights below are the standard LQ_N values (see
Lewis & Miller, *Computational Methods of Neutron Transport*).  Weights are
normalised so that the full-sphere weights sum to one; each octant therefore
carries a total weight of 1/8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InputDeckError

# Level-symmetric quadrature tables: for each N, the distinct positive
# direction cosines and, for each point type (a multiset of cosine indices
# summing appropriately), the per-octant-normalised weight.
_LQN_TABLES: dict[int, dict] = {
    2: {
        "mu": [0.5773503],
        "points": [((0, 0, 0), 1.0)],
    },
    4: {
        "mu": [0.3500212, 0.8688903],
        "points": [((0, 0, 1), 1.0 / 3.0), ((0, 1, 0), 1.0 / 3.0), ((1, 0, 0), 1.0 / 3.0)],
    },
    6: {
        "mu": [0.2666355, 0.6815076, 0.9261808],
        "points": [
            ((0, 0, 2), 0.1761263), ((0, 2, 0), 0.1761263), ((2, 0, 0), 0.1761263),
            ((0, 1, 1), 0.1572071), ((1, 0, 1), 0.1572071), ((1, 1, 0), 0.1572071),
        ],
    },
    8: {
        "mu": [0.2182179, 0.5773503, 0.7867958, 0.9511897],
        "points": [
            ((0, 0, 3), 0.1209877), ((0, 3, 0), 0.1209877), ((3, 0, 0), 0.1209877),
            ((0, 1, 2), 0.0907407), ((0, 2, 1), 0.0907407),
            ((1, 0, 2), 0.0907407), ((2, 0, 1), 0.0907407),
            ((1, 2, 0), 0.0907407), ((2, 1, 0), 0.0907407),
            ((1, 1, 1), 0.0925926),
        ],
    },
}


@dataclass(frozen=True)
class OctantAngles:
    """The ordinates of one octant.

    Attributes
    ----------
    mu, eta, xi:
        Positive direction cosines along i, j and k for each ordinate
        (arrays of length ``n_angles``); the octant's sign pattern is applied
        by the sweep code.
    weight:
        Quadrature weights, normalised so the full sphere sums to one.
    """

    mu: np.ndarray
    eta: np.ndarray
    xi: np.ndarray
    weight: np.ndarray

    @property
    def n_angles(self) -> int:
        return len(self.mu)

    def angle_block(self, start: int, count: int) -> "OctantAngles":
        """Slice out a block of ``count`` ordinates starting at ``start``."""
        stop = start + count
        return OctantAngles(self.mu[start:stop], self.eta[start:stop],
                            self.xi[start:stop], self.weight[start:stop])


class LevelSymmetricQuadrature:
    """A level-symmetric S_N quadrature set.

    Parameters
    ----------
    sn:
        The S_N order: one of 2, 4, 6 or 8.  The number of ordinates per
        octant is ``sn * (sn + 2) / 8``.
    """

    def __init__(self, sn: int = 6):
        if sn not in _LQN_TABLES:
            raise InputDeckError(
                f"unsupported S_N order {sn}; available: {sorted(_LQN_TABLES)}")
        self.sn = sn
        table = _LQN_TABLES[sn]
        mu_values = np.asarray(table["mu"], dtype=float)
        mu, eta, xi, weight = [], [], [], []
        for (a, b, c), w in table["points"]:
            mu.append(mu_values[a])
            eta.append(mu_values[b])
            xi.append(mu_values[c])
            weight.append(w / 8.0)  # full-sphere normalisation
        self._octant = OctantAngles(np.asarray(mu), np.asarray(eta),
                                    np.asarray(xi), np.asarray(weight))

    # ------------------------------------------------------------------

    @property
    def angles_per_octant(self) -> int:
        """Number of ordinates in each octant (= sn(sn+2)/8)."""
        return self._octant.n_angles

    @property
    def total_angles(self) -> int:
        """Total ordinates over all eight octants."""
        return 8 * self.angles_per_octant

    def octant_angles(self) -> OctantAngles:
        """The (positive-cosine) ordinates of a single octant."""
        return self._octant

    def angle_blocks(self, mmi: int) -> list[OctantAngles]:
        """Split the octant's ordinates into blocks of at most ``mmi`` angles.

        Mirrors SWEEP3D's angle-blocking: the last block may be smaller when
        ``mmi`` does not divide the per-octant angle count.
        """
        if mmi < 1:
            raise InputDeckError("mmi (angle block size) must be >= 1")
        blocks = []
        start = 0
        while start < self.angles_per_octant:
            count = min(mmi, self.angles_per_octant - start)
            blocks.append(self._octant.angle_block(start, count))
            start += count
        return blocks

    def n_angle_blocks(self, mmi: int) -> int:
        """Number of angle blocks per octant for a blocking factor of ``mmi``."""
        if mmi < 1:
            raise InputDeckError("mmi (angle block size) must be >= 1")
        return -(-self.angles_per_octant // mmi)

    # -- sanity ----------------------------------------------------------

    def weight_sum(self) -> float:
        """Total weight over all eight octants (should be 1.0)."""
        return float(8.0 * self._octant.weight.sum())

    def mean_cosine_check(self) -> float:
        """Value of sum(w * mu^2) over the sphere; exactly 1/3 for a valid set."""
        octant = self._octant
        return float(8.0 * np.sum(octant.weight * octant.mu ** 2))

    def __repr__(self) -> str:
        return f"LevelSymmetricQuadrature(S{self.sn}, {self.angles_per_octant} angles/octant)"
