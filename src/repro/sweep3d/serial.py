"""Single-process reference solver for the SWEEP3D transport problem.

The serial solver executes the same kernel as the parallel code over the
whole grid.  It is used

* as the physics reference the parallel (numeric-mode) solver is compared
  against in the test suite,
* by the PAPI-substitute profiler, which characterises its per-iteration
  operation mix to obtain the achieved floating point rate on a simulated
  processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.simproc.opcodes import OperationMix
from repro.sweep3d.geometry import octant_order
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.kernel import SweepKernel


@dataclass
class SerialSolveResult:
    """Outcome of a serial source-iteration solve."""

    deck: Sweep3DInput
    phi: np.ndarray
    iterations: int
    converged: bool
    error_history: list[float] = field(default_factory=list)
    #: Net outflow through the vacuum boundaries during the final iteration.
    boundary_leakage: float = 0.0
    #: Total negative-flux fixups applied during the final iteration.
    fixups: int = 0

    @property
    def final_error(self) -> float:
        return self.error_history[-1] if self.error_history else float("inf")

    def mean_flux(self) -> float:
        return float(self.phi.mean())


class SerialSweepSolver:
    """Serial source-iteration driver around :class:`SweepKernel`."""

    def __init__(self, deck: Sweep3DInput):
        self.deck = deck
        self.kernel = SweepKernel(deck)

    # ------------------------------------------------------------------

    def iteration_mix(self) -> OperationMix:
        """Operation mix of one full source iteration on the whole grid."""
        return self.kernel.local_sweep_mix(self.deck.it, self.deck.jt)

    def solve(self, max_iterations: int | None = None,
              require_convergence: bool = False) -> SerialSolveResult:
        """Run source iterations until convergence or the iteration cap.

        Parameters
        ----------
        max_iterations:
            Overrides the deck's ``max_iterations`` when given.
        require_convergence:
            If true, raise :class:`~repro.errors.ConvergenceError` when the
            tolerance is not met within the allowed iterations.
        """
        deck = self.deck
        limit = max_iterations if max_iterations is not None else deck.max_iterations
        nx, ny, kt = deck.it, deck.jt, deck.kt
        phi = np.zeros((nx, ny, kt))
        history: list[float] = []
        leakage = 0.0
        fixups = 0
        converged = False

        for iteration in range(limit):
            phi_new, leakage, fixups = self._sweep_all_octants(phi)
            error = self._flux_error(phi, phi_new)
            history.append(error)
            phi = phi_new
            if error <= deck.epsi and iteration > 0:
                converged = True
                break

        if require_convergence and not converged:
            raise ConvergenceError(
                f"source iteration did not reach epsi={deck.epsi} within "
                f"{limit} iterations (final error {history[-1]:.3e})")
        return SerialSolveResult(deck=deck, phi=phi, iterations=len(history),
                                 converged=converged, error_history=history,
                                 boundary_leakage=leakage, fixups=fixups)

    # ------------------------------------------------------------------

    def _sweep_all_octants(self, phi_old: np.ndarray) -> tuple[np.ndarray, float, int]:
        """One source iteration: sweep every octant, angle block and k block."""
        deck = self.deck
        nx, ny, kt = deck.it, deck.jt, deck.kt
        quad = deck.quadrature()
        q_total = deck.sigma_s * phi_old + deck.fixed_source
        phi_new = np.zeros_like(phi_old)
        leakage = 0.0
        fixups = 0

        for octant in octant_order():
            for angles in quad.angle_blocks(deck.mmi):
                na = angles.n_angles
                psi_k = np.zeros((nx, ny, na))        # vacuum k boundary
                for k_planes in self.kernel.k_blocks_for_octant(octant):
                    nk = len(k_planes)
                    psi_i = np.zeros((ny, nk, na))    # vacuum i boundary
                    psi_j = np.zeros((nx, nk, na))    # vacuum j boundary
                    result = self.kernel.sweep_block(
                        octant, angles, k_planes, q_total,
                        psi_i, psi_j, psi_k, phi_new)
                    psi_k = result.psi_out_k
                    fixups += result.fixups
                    leakage += self._ij_boundary_leakage(result, angles, deck)
                # After the last k block, psi_k is the flux leaving through
                # the domain's k boundary in this octant's direction.
                leakage += float((psi_k * (angles.xi * angles.weight)).sum()) * deck.dx * deck.dy
        return phi_new, leakage, fixups

    @staticmethod
    def _ij_boundary_leakage(result, angles, deck: Sweep3DInput) -> float:
        """Outflow through the downstream i/j faces of a serial block.

        In the serial solver every block's downstream i and j faces are
        physical vacuum boundaries (there is only one processor), so the
        block's outgoing face fluxes leak straight out of the domain.
        """
        weights = angles.weight
        leak = float((result.psi_out_i * (angles.mu * weights)).sum()) * deck.dy * deck.dz
        leak += float((result.psi_out_j * (angles.eta * weights)).sum()) * deck.dx * deck.dz
        return leak

    @staticmethod
    def _flux_error(phi_old: np.ndarray, phi_new: np.ndarray) -> float:
        """Relative point-wise flux change, as the original code's ``dfmxi``."""
        scale = float(np.abs(phi_new).max())
        if scale == 0.0:
            return float("inf")
        return float(np.abs(phi_new - phi_old).max() / scale)
