"""Physics invariants used to verify the SWEEP3D implementation.

The transport solve must satisfy a handful of properties independent of the
numerical details; the test suite checks them for both the serial and the
parallel (numeric-mode) solvers:

* **Positivity** — with a non-negative source and the negative-flux fixup
  enabled, the scalar flux is non-negative everywhere.
* **Particle balance** — at convergence, production equals absorption plus
  leakage through the vacuum boundaries.
* **Infinite-medium limit** — deep inside an optically thick domain the
  scalar flux approaches ``q / (sigma_t - sigma_s)``.
* **Serial/parallel equivalence** — the parallel decomposition must not
  change the converged flux field.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sweep3d.input import Sweep3DInput


@dataclass(frozen=True)
class BalanceReport:
    """Particle balance bookkeeping for a converged solution."""

    production: float
    absorption: float
    leakage: float

    @property
    def residual(self) -> float:
        """Absolute balance residual: production - absorption - leakage."""
        return self.production - self.absorption - self.leakage

    @property
    def relative_residual(self) -> float:
        """Residual relative to the production term."""
        if self.production == 0.0:
            return float("inf")
        return abs(self.residual) / abs(self.production)


def particle_balance(deck: Sweep3DInput, phi: np.ndarray, leakage: float) -> BalanceReport:
    """Compute the particle balance of a (near-)converged solution.

    ``leakage`` is the net outflow through the vacuum boundaries accumulated
    by the solver during its final iteration.
    """
    cell_volume = deck.dx * deck.dy * deck.dz
    production = deck.fixed_source * phi.size * cell_volume
    absorption = float((deck.sigma_t - deck.sigma_s) * phi.sum() * cell_volume)
    return BalanceReport(production=production, absorption=absorption, leakage=leakage)


def infinite_medium_flux(deck: Sweep3DInput) -> float:
    """The scalar flux of the equivalent infinite homogeneous medium."""
    return deck.fixed_source / (deck.sigma_t - deck.sigma_s)


def flux_is_nonnegative(phi: np.ndarray, tolerance: float = 0.0) -> bool:
    """Whether the scalar flux is non-negative (within ``tolerance``)."""
    return bool((phi >= -abs(tolerance)).all())


def interior_flux_ratio(deck: Sweep3DInput, phi: np.ndarray, margin: int = 2) -> float:
    """Ratio of the central flux to the infinite-medium value.

    ``margin`` cells are stripped from every boundary before taking the
    central value, so that for optically thick problems the ratio tends to
    one from below.
    """
    interior = phi[margin:-margin or None, margin:-margin or None, margin:-margin or None]
    if interior.size == 0:
        interior = phi
    centre = float(interior[tuple(dim // 2 for dim in interior.shape)])
    return centre / infinite_medium_flux(deck)


def max_relative_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Maximum point-wise relative difference between two flux fields."""
    scale = max(float(np.abs(a).max()), float(np.abs(b).max()))
    if scale == 0.0:
        return 0.0
    return float(np.abs(a - b).max() / scale)
