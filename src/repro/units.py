"""Unit helpers used throughout the package.

All internal computation uses SI base units: **seconds** for time and
**bytes** for message/data sizes.  Rates are expressed in operations (or
bytes) per second.  The helpers here exist to make the intent of literal
constants obvious at call sites (``5 * units.USEC`` rather than ``5e-6``)
and to format quantities for reports.
"""

from __future__ import annotations

import math

# -- time -------------------------------------------------------------------

SEC = 1.0
MSEC = 1e-3
USEC = 1e-6
NSEC = 1e-9

# -- data sizes -------------------------------------------------------------

BYTE = 1
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Size of a double precision floating point number in bytes.
DOUBLE_BYTES = 8

# -- rates ------------------------------------------------------------------

MFLOPS = 1e6
GFLOPS = 1e9

MB_PER_S = 1e6
GB_PER_S = 1e9


def snap_to_grid(value: float, quantum: float) -> float:
    """Round ``value`` to the nearest multiple of ``quantum`` seconds.

    With a power-of-two quantum (e.g. ``2**-30``) the returned value is an
    *exact* binary multiple of the quantum: ``value / quantum`` and the
    final product are both exact float operations, so every snapped
    duration lives on one shared dyadic time grid.  The steady-state
    execution tier (:mod:`repro.simmpi.steady`) relies on that property —
    durations on a common dyadic grid make the whole max-plus replay exact
    integer arithmetic, which is what lets a per-period growth vector be
    extrapolated bit-identically.  ``quantum <= 0`` returns ``value``
    unchanged (the continuous-timebase default).
    """
    if quantum <= 0.0:
        return value
    return round(value / quantum) * quantum


def usec(value: float) -> float:
    """Convert a value expressed in microseconds to seconds."""
    return value * USEC


def msec(value: float) -> float:
    """Convert a value expressed in milliseconds to seconds."""
    return value * MSEC


def mflops(value: float) -> float:
    """Convert a rate expressed in MFLOP/s to FLOP/s."""
    return value * MFLOPS


def mbytes_per_s(value: float) -> float:
    """Convert a bandwidth expressed in MB/s (decimal) to bytes/s."""
    return value * MB_PER_S


def doubles(count: float) -> float:
    """Size in bytes of ``count`` double precision values."""
    return count * DOUBLE_BYTES


def format_seconds(value: float, precision: int = 2) -> str:
    """Render a duration with an auto-selected unit.

    >>> format_seconds(0.0000032)
    '3.20 us'
    >>> format_seconds(12.5)
    '12.50 s'
    """
    if not math.isfinite(value):
        return str(value)
    magnitude = abs(value)
    if magnitude >= 1.0 or magnitude == 0.0:
        return f"{value:.{precision}f} s"
    if magnitude >= MSEC:
        return f"{value / MSEC:.{precision}f} ms"
    if magnitude >= USEC:
        return f"{value / USEC:.{precision}f} us"
    return f"{value / NSEC:.{precision}f} ns"


def format_bytes(value: float, precision: int = 2) -> str:
    """Render a byte count with an auto-selected binary unit.

    >>> format_bytes(2048)
    '2.00 KiB'
    """
    magnitude = abs(value)
    if magnitude >= GIB:
        return f"{value / GIB:.{precision}f} GiB"
    if magnitude >= MIB:
        return f"{value / MIB:.{precision}f} MiB"
    if magnitude >= KIB:
        return f"{value / KIB:.{precision}f} KiB"
    return f"{value:.0f} B"


def format_rate(value: float, precision: int = 1) -> str:
    """Render an operation rate (ops/second) with an auto-selected unit."""
    magnitude = abs(value)
    if magnitude >= GFLOPS:
        return f"{value / GFLOPS:.{precision}f} Gop/s"
    if magnitude >= MFLOPS:
        return f"{value / MFLOPS:.{precision}f} Mop/s"
    return f"{value:.{precision}f} op/s"


def relative_error(measured: float, predicted: float) -> float:
    """Signed relative error in percent, using the paper's convention.

    The paper reports ``error = (measured - predicted) / measured * 100`` so
    that an *over*-prediction yields a negative error (Tables 1 and 2 are
    dominated by negative errors; Table 3 by positive ones).
    """
    if measured == 0:
        raise ZeroDivisionError("relative error undefined for zero measurement")
    return (measured - predicted) / measured * 100.0
