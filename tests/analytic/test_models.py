"""Tests for the LogGP and Los Alamos baseline analytic models."""

import pytest

from repro.analytic.comparison import compare_models
from repro.analytic.hoisie import HoisieWavefrontModel
from repro.analytic.loggp import LogGPParameters, LogGPWavefrontModel
from repro.core.workload import SweepWorkload
from repro.errors import ModelError
from repro.simnet.presets import myrinet2000_link
from repro.sweep3d.input import standard_deck


@pytest.fixture
def workload_2x2():
    return SweepWorkload(standard_deck("validation", px=2, py=2), 2, 2)


@pytest.fixture
def workload_8x8():
    return SweepWorkload(standard_deck("validation", px=8, py=8), 8, 8)


class TestLogGPParameters:
    def test_from_link(self):
        params = LogGPParameters.from_link(myrinet2000_link())
        assert params.latency > 0
        assert params.gap_per_byte == pytest.approx(1.0 / myrinet2000_link().bandwidth)

    def test_from_hardware(self, synthetic_hardware):
        params = LogGPParameters.from_hardware(synthetic_hardware)
        assert params.latency >= 0
        assert params.overhead > 0
        assert params.gap_per_byte >= 0

    def test_one_way_time(self):
        params = LogGPParameters(latency=10e-6, overhead=1e-6, gap=1e-6, gap_per_byte=1e-9)
        assert params.one_way(1000) == pytest.approx(10e-6 + 2e-6 + 1e-6)

    def test_negative_parameter_rejected(self):
        with pytest.raises(ModelError):
            LogGPParameters(latency=-1.0, overhead=0.0, gap=0.0, gap_per_byte=0.0)


class TestLogGPWavefrontModel:
    def test_prediction_positive_and_reasonable(self, synthetic_hardware, workload_2x2):
        model = LogGPWavefrontModel(LogGPParameters.from_hardware(synthetic_hardware))
        seconds_per_flop = synthetic_hardware.cpu.seconds_per_flop
        time = model.predict(workload_2x2, seconds_per_flop)
        compute_only = (36.0 * 48 * 125000 * 12) * seconds_per_flop
        assert time > compute_only
        assert time < 3 * compute_only

    def test_weak_scaling_grows(self, synthetic_hardware, workload_2x2, workload_8x8):
        model = LogGPWavefrontModel(LogGPParameters.from_hardware(synthetic_hardware))
        spf = synthetic_hardware.cpu.seconds_per_flop
        assert model.predict(workload_8x8, spf) > model.predict(workload_2x2, spf)


class TestHoisieModel:
    def test_decomposition_terms(self, synthetic_hardware, workload_2x2):
        model = HoisieWavefrontModel(synthetic_hardware)
        parts = model.decompose(workload_2x2)
        assert parts["computation"] > 0
        assert parts["communication"] > 0
        assert parts["total"] == pytest.approx(
            model.predict(workload_2x2), rel=1e-9)
        # Equation (2): total >= computation (no modelled overlap here).
        assert parts["total"] >= parts["computation"]

    def test_single_processor_has_no_message_cost(self, synthetic_hardware):
        workload = SweepWorkload(standard_deck("validation", px=1, py=1), 1, 1)
        model = HoisieWavefrontModel(synthetic_hardware)
        assert model.block_message_time(workload) == 0.0

    def test_weak_scaling_grows(self, synthetic_hardware, workload_2x2, workload_8x8):
        model = HoisieWavefrontModel(synthetic_hardware)
        assert model.predict(workload_8x8) > model.predict(workload_2x2)

    def test_block_compute_time(self, synthetic_hardware, workload_2x2):
        model = HoisieWavefrontModel(synthetic_hardware)
        expected = 36.0 * 50 * 50 * 10 * 3 * synthetic_hardware.cpu.seconds_per_flop
        assert model.block_compute_time(
            workload_2x2, synthetic_hardware.cpu.seconds_per_flop) == pytest.approx(expected)


class TestModelAgreement:
    def test_three_models_agree_on_compute_bound_configs(self, synthetic_hardware,
                                                         workload_2x2, synthetic_engine):
        comparison = compare_models(workload_2x2, synthetic_hardware,
                                    engine=synthetic_engine)
        assert comparison.pace > 0 and comparison.loggp > 0 and comparison.hoisie > 0
        # Section 6: the predictions of the different analytic models concur.
        assert comparison.spread < 0.5
        assert comparison.max_relative_difference("pace") < 0.5

    def test_describe(self, synthetic_hardware, workload_2x2, synthetic_engine):
        comparison = compare_models(workload_2x2, synthetic_hardware,
                                    engine=synthetic_engine)
        text = comparison.describe()
        assert "PACE" in text and "LogGP" in text and "Hoisie" in text
