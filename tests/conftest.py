"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.evaluation import EvaluationEngine
from repro.core.hmcl.model import CpuCostModel, HardwareModel, MpiCostModel
from repro.core.workload import load_sweep3d_model
from repro.machines.presets import get_machine
from repro.profiling.curvefit import PiecewiseLinearModel
from repro.simnet.presets import pentium3_cluster_topology
from repro.simproc.presets import opteron_2000, pentium3_1400
from repro.sweep3d.input import Sweep3DInput, standard_deck


@pytest.fixture(scope="session")
def sweep3d_model():
    """The shipped PSL model, parsed once per session."""
    return load_sweep3d_model()


@pytest.fixture(scope="session")
def p3_processor():
    return pentium3_1400()


@pytest.fixture(scope="session")
def opteron_processor():
    return opteron_2000()


@pytest.fixture(scope="session")
def p3_topology():
    return pentium3_cluster_topology()


@pytest.fixture(scope="session")
def p3_machine():
    return get_machine("pentium3-myrinet")


@pytest.fixture(scope="session")
def opteron_machine():
    return get_machine("opteron-gige")


def make_synthetic_mpi_model(latency: float = 10e-6,
                             per_byte: float = 4e-9) -> MpiCostModel:
    """A hand-built MPI cost model with known, simple parameters."""
    def line(intercept: float, slope: float) -> PiecewiseLinearModel:
        return PiecewiseLinearModel(A=16384.0, B=intercept, C=slope,
                                    D=intercept * 2, E=slope)
    return MpiCostModel(
        send=line(2e-6, 0.3e-9),
        recv=line(3e-6, 0.5e-9),
        pingpong=line(2 * latency, 2 * per_byte),
    )


@pytest.fixture(scope="session")
def synthetic_hardware() -> HardwareModel:
    """A deterministic hardware model decoupled from the machine presets."""
    return HardwareModel(
        name="synthetic",
        cpu=CpuCostModel.from_achieved_rate(200e6),   # 200 MFLOPS
        mpi=make_synthetic_mpi_model(),
        processors_per_node=2,
        description="synthetic hardware for unit tests",
    )


@pytest.fixture(scope="session")
def synthetic_engine(sweep3d_model, synthetic_hardware) -> EvaluationEngine:
    return EvaluationEngine(sweep3d_model, synthetic_hardware)


@pytest.fixture(scope="session")
def validation_deck_2x2() -> Sweep3DInput:
    """The Table-row deck for a 2x2 array (50^3 cells per processor)."""
    return standard_deck("validation", px=2, py=2)


@pytest.fixture()
def mini_deck() -> Sweep3DInput:
    """A small deck suitable for numeric runs in tests."""
    return Sweep3DInput(it=6, jt=6, kt=6, mk=3, mmi=3, sn=4,
                        epsi=1e-6, max_iterations=8, label="test-mini")
