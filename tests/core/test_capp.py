"""Tests for the capp static C source analyser."""

import pytest

from repro.core.capp import analyze_source, analyze_sweep_kernel_resource
from repro.core.capp.clexer import parse_pragma, tokenize
from repro.core.capp.cparser import parse_c
from repro.core.capp.flow import FlowLoop, evaluate_count_expression
from repro.errors import CappError, CappSyntaxError
from repro.sweep3d.kernel import SweepKernel


class TestLexer:
    def test_tokenises_basic_source(self):
        tokens = tokenize("int x = 3; /* comment */ double y;")
        texts = [t.text for t in tokens]
        assert "int" in texts and "double" in texts and "3" in texts
        assert all(t.kind != "comment" for t in tokens)

    def test_pragma_preserved(self):
        tokens = tokenize("/* capp: prob=0.25 trips=10 */ if (x > 0) { }")
        assert tokens[0].kind == "pragma"
        assert parse_pragma(tokens[0]) == {"prob": 0.25, "trips": 10.0}

    def test_malformed_pragma(self):
        token = tokenize("/* capp: garbage */")[0]
        with pytest.raises(CappSyntaxError):
            parse_pragma(token)

    def test_unknown_character(self):
        with pytest.raises(CappSyntaxError):
            tokenize("int x @ y;")

    def test_preprocessor_skipped(self):
        tokens = tokenize("#include <math.h>\nint x;")
        assert tokens[0].text == "int"


class TestParser:
    def test_function_with_loop(self):
        program = parse_c("""
        void f(int n, double *a) {
            int i;
            for (i = 0; i < n; i++) {
                a[i] = a[i] * 2.0;
            }
        }
        """)
        assert [f.name for f in program.functions] == ["f"]
        func = program.function("f")
        assert func.params[0].name == "n"
        assert func.params[1].is_pointer

    def test_unknown_function_lookup(self):
        program = parse_c("void f(int n) { n = n + 1; }")
        with pytest.raises(KeyError):
            program.function("g")

    def test_while_rejected(self):
        with pytest.raises(CappSyntaxError):
            parse_c("void f(int n) { while (n) { n = n - 1; } }")

    def test_if_else(self):
        program = parse_c("""
        double g(double x) {
            double y;
            if (x > 0.0) { y = x; } else { y = 0.0 - x; }
            return y;
        }
        """)
        assert program.function("g").name == "g"

    def test_syntax_error_reports_line(self):
        with pytest.raises(CappSyntaxError):
            parse_c("void f( { }")


class TestAnalyzer:
    def test_simple_loop_counts(self):
        analyzer = analyze_source("""
        void saxpy(int n, double a, double *x, double *y) {
            int i;
            for (i = 0; i < n; i++) {
                y[i] = y[i] + a * x[i];
            }
        }
        """)
        tally = analyzer.tally("saxpy", {"n": 100})
        assert tally.count("MFDG") == 100
        assert tally.count("AFDG") == 100
        assert tally.count("LDDG") == 200      # y[i] and x[i] reads
        assert tally.count("STDG") == 100
        assert tally.count("LFOR") == 1

    def test_symbolic_trip_count_needs_binding(self):
        analyzer = analyze_source("""
        void f(int n, double *x) {
            int i;
            for (i = 0; i < n; i++) { x[i] = x[i] + 1.0; }
        }
        """)
        with pytest.raises(CappError):
            analyzer.tally("f", {})

    def test_trip_count_pragma_overrides(self):
        analyzer = analyze_source("""
        void f(double *x, int lo, int hi) {
            int i;
            /* capp: trips=7 */
            for (i = lo; i < hi; i = i + 1) { x[i] = x[i] * 2.0; }
        }
        """)
        assert analyzer.tally("f", {}).count("MFDG") == 7

    def test_branch_probability_weighting(self):
        analyzer = analyze_source("""
        void f(int n, double *x) {
            int i;
            for (i = 0; i < n; i++) {
                /* capp: prob=0.1 */
                if (x[i] < 0.0) {
                    x[i] = x[i] * 2.0;
                }
            }
        }
        """)
        tally = analyzer.tally("f", {"n": 1000})
        assert tally.count("MFDG") == pytest.approx(100.0)
        assert tally.count("IFBR") >= 1000

    def test_nested_loops_multiply(self):
        analyzer = analyze_source("""
        void f(int n, int m, double *x) {
            int i, j;
            for (i = 0; i < n; i++) {
                for (j = 0; j < m; j++) {
                    x[j] = x[j] + 1.0;
                }
            }
        }
        """)
        assert analyzer.tally("f", {"n": 4, "m": 5}).count("AFDG") == 20

    def test_integer_arithmetic_not_counted_as_flops(self):
        analyzer = analyze_source("""
        void f(int n, double *x) {
            int i, k;
            for (i = 0; i < n; i++) {
                k = i * 2 + 1;
                x[k] = 1.0;
            }
        }
        """)
        tally = analyzer.tally("f", {"n": 10})
        assert tally.flops == 0
        assert tally.count("INTG") > 0

    def test_intrinsic_costs(self):
        analyzer = analyze_source("""
        double f(double x) {
            double y;
            y = fabs(x);
            return sqrt(y);
        }
        """)
        tally = analyzer.tally("f", {})
        assert tally.count("AFDG") == 1     # fabs
        assert tally.count("DFDG") == 2     # sqrt

    def test_unknown_call_warns(self):
        analyzer = analyze_source("""
        double f(double x) { return mystery(x); }
        """)
        assert any("mystery" in warning for warning in analyzer.warnings)

    def test_unknown_function_name(self):
        analyzer = analyze_source("void f(int n) { n = n + 1; }")
        with pytest.raises(CappError):
            analyzer.tally("missing", {})


class TestFlowEvaluation:
    def test_count_expression_arithmetic(self):
        from repro.core.capp import cast
        expr = cast.Bin("-", cast.Var("hi"), cast.Var("lo"))
        assert evaluate_count_expression(expr, {"hi": 10, "lo": 4}) == 6

    def test_count_expression_unbound(self):
        from repro.core.capp import cast
        with pytest.raises(CappError):
            evaluate_count_expression(cast.Var("n"), {})

    def test_negative_counts_clamped(self):
        from repro.core.capp import cast
        from repro.core.capp.flow import FlowBlock
        from repro.core.clc import ClcVector
        loop = FlowLoop(cast.Num(-5.0, False), FlowBlock(ClcVector({"AFDG": 1})))
        assert loop.tally({}).count("AFDG") == 0.0

    def test_branch_probability_validation(self):
        from repro.core.capp.flow import FlowBlock, FlowBranch
        from repro.core.clc import ClcVector
        with pytest.raises(CappError):
            FlowBranch(1.5, FlowBlock(ClcVector()))

    def test_describe_renders_tree(self):
        analyzer = analyze_source("""
        void f(int n, double *x) {
            int i;
            for (i = 0; i < n; i++) { x[i] = x[i] + 1.0; }
        }
        """)
        text = analyzer.function("f").describe()
        assert "loop" in text and "clc" in text


class TestSweepKernelResource:
    def test_all_three_kernels_analysed(self):
        analyzer = analyze_sweep_kernel_resource()
        assert {"sweep_block", "source_update", "flux_error"} <= set(analyzer.functions)

    def test_per_cell_angle_flops_match_canonical(self):
        """capp's static count agrees with the hand-verified characterisation."""
        analyzer = analyze_sweep_kernel_resource()
        tally = analyzer.tally("sweep_block", dict(nx=1, ny=1, mk=1, mmi=1))
        assert tally.flops == SweepKernel.flops_per_cell_angle()
        assert tally.count("AFDG") == SweepKernel.cell_mix().as_mnemonics()["AFDG"]
        assert tally.count("MFDG") == SweepKernel.cell_mix().as_mnemonics()["MFDG"]
        assert tally.count("DFDG") == 1

    def test_counts_scale_with_block_size(self):
        analyzer = analyze_sweep_kernel_resource()
        tally = analyzer.tally("sweep_block", dict(nx=50, ny=50, mk=10, mmi=3))
        assert tally.flops == pytest.approx(36 * 50 * 50 * 10 * 3)

    def test_source_update_flops_per_cell(self):
        analyzer = analyze_sweep_kernel_resource()
        tally = analyzer.tally("source_update", dict(ncells=1000))
        assert tally.flops == pytest.approx(2000)

    def test_flux_error_flops_per_cell(self):
        analyzer = analyze_sweep_kernel_resource()
        tally = analyzer.tally("flux_error", dict(ncells=1000))
        assert tally.flops == pytest.approx(4000, rel=0.3)
