"""Tests for clc operation vectors."""

import pytest

from repro.core.clc import ClcVector, sum_vectors
from repro.simproc.opcodes import OpCategory, OperationMix


class TestClcVector:
    def test_flops(self):
        clc = ClcVector({"AFDG": 16, "MFDG": 19, "DFDG": 1, "LDDG": 14})
        assert clc.flops == 36
        assert clc.total == 50

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(KeyError):
            ClcVector({"XXXX": 1})

    def test_case_insensitive_keys(self):
        assert ClcVector({"afdg": 2}).count("AFDG") == 2

    def test_addition_and_scaling(self):
        a = ClcVector({"AFDG": 1, "MFDG": 2})
        b = ClcVector({"MFDG": 3, "DFDG": 1})
        assert (a + b).as_dict() == {"AFDG": 1, "MFDG": 5, "DFDG": 1}
        assert (a * 3).count("MFDG") == 6
        assert (2 * a).count("AFDG") == 2

    def test_equality_tolerant(self):
        assert ClcVector({"AFDG": 1.0}) == ClcVector({"AFDG": 1.0 + 1e-15})
        assert ClcVector({"AFDG": 1.0}) != ClcVector({"AFDG": 2.0})
        assert ClcVector({}) == ClcVector({"AFDG": 0.0})

    def test_is_empty(self):
        assert ClcVector().is_empty()
        assert not ClcVector({"LFOR": 0.5}).is_empty()

    def test_operation_mix_roundtrip(self):
        clc = ClcVector({"AFDG": 3, "MFDG": 4, "LDDG": 5, "IFBR": 1})
        mix = clc.to_operation_mix(working_set_bytes=256)
        assert isinstance(mix, OperationMix)
        assert mix.count(OpCategory.FADD) == 3
        assert mix.working_set_bytes == 256
        assert ClcVector.from_operation_mix(mix) == clc

    def test_sum_vectors(self):
        total = sum_vectors(ClcVector({"AFDG": 1}) for _ in range(4))
        assert total.count("AFDG") == 4

    def test_as_dict_canonical_order(self):
        clc = ClcVector({"LFOR": 1, "AFDG": 2, "DFDG": 3})
        assert list(clc.as_dict()) == ["AFDG", "DFDG", "LFOR"]

    def test_describe(self):
        assert "AFDG:2" in ClcVector({"AFDG": 2}).describe()
