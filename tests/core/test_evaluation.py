"""Tests for the PACE evaluation engine."""

import pytest

from repro.core.evaluation import CompiledModel, EvaluationEngine
from repro.core.hmcl.model import CpuCostModel, HardwareModel
from repro.core.psl.parser import parse_psl
from repro.core.workload import SweepWorkload
from repro.errors import EvaluationError
from repro.sweep3d.input import standard_deck


def tiny_model(body: str = "call work;", extra: str = ""):
    """A minimal application + async subtask model for engine tests."""
    return parse_psl(f"""
    application app {{
        include work;
        var n = 2, cells = 100;
        link work {{ cells = cells; }}
        proc init {{ {body} }}
    }}
    subtask work {{
        partmp async;
        var cells = 1;
        link async {{ work = flow(body); }}
        cflow body {{ loop (cells) {{ clc {{ MFDG = 1; }} }} }}
    }}
    partmp async {{ var work = 0; option {{ strategy = "async"; }} }}
    {extra}
    """)


class TestProcedureExecution:
    def test_single_call(self, synthetic_hardware):
        engine = EvaluationEngine(tiny_model(), synthetic_hardware)
        prediction = engine.predict()
        # 100 MFDG flops at 200 MFLOPS.
        assert prediction.total_time == pytest.approx(100 / 200e6)
        assert prediction.breakdown["work"].calls == 1

    def test_for_loop_repeats_calls(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = 1 to n { call work; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        prediction = engine.predict()
        assert prediction.breakdown["work"].calls == 2
        assert prediction.total_time == pytest.approx(2 * 100 / 200e6)

    def test_variable_override_at_predict_time(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = 1 to n { call work; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        prediction = engine.predict({"n": 5, "cells": 200})
        assert prediction.breakdown["work"].calls == 5
        assert prediction.total_time == pytest.approx(5 * 200 / 200e6)

    def test_if_statement_branches(self, synthetic_hardware):
        model = tiny_model(body="if (n > 1) { call work; } else { compute 1.0; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        assert engine.predict({"n": 2}).total_time == pytest.approx(100 / 200e6)
        assert engine.predict({"n": 1}).total_time == pytest.approx(1.0)

    def test_compute_statement_adds_seconds(self, synthetic_hardware):
        model = tiny_model(body="compute 0.5; call work;")
        engine = EvaluationEngine(model, synthetic_hardware)
        prediction = engine.predict()
        assert prediction.total_time == pytest.approx(0.5 + 100 / 200e6)
        assert "app" in prediction.breakdown

    def test_assignment_and_expression_variables(self, synthetic_hardware):
        model = tiny_model(body="var i; n = n * 3; for i = 1 to n { call work; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        assert engine.predict({"n": 2}).breakdown["work"].calls == 6

    def test_for_with_negative_step(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = n to 1 step 0 - 1 { call work; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        assert engine.predict({"n": 3}).breakdown["work"].calls == 3

    def test_zero_step_rejected(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = 1 to 2 step 0 { call work; }")
        engine = EvaluationEngine(tiny_model(), synthetic_hardware)
        engine_bad = EvaluationEngine(model, synthetic_hardware)
        with pytest.raises(EvaluationError):
            engine_bad.predict()

    def test_calling_unknown_entry_proc(self, synthetic_hardware):
        engine = EvaluationEngine(tiny_model(), synthetic_hardware)
        from repro.errors import PslNameError
        with pytest.raises(PslNameError):
            engine.predict(entry_proc="missing")

    def test_subtask_without_template_or_proc_rejected(self, synthetic_hardware):
        model = parse_psl("""
        application app { include broken; proc init { call broken; } }
        subtask broken { var cells = 1; }
        """)
        engine = EvaluationEngine(model, synthetic_hardware)
        with pytest.raises(EvaluationError):
            engine.predict()

    def test_subtask_with_init_proc_instead_of_template(self, synthetic_hardware):
        model = parse_psl("""
        application app { include serial; proc init { call serial; } }
        subtask serial { var cells = 1; proc init { compute 0.125; } }
        """)
        engine = EvaluationEngine(model, synthetic_hardware)
        assert engine.predict().total_time == pytest.approx(0.125)

    def test_predict_subtask_in_isolation(self, synthetic_hardware):
        engine = EvaluationEngine(tiny_model(), synthetic_hardware)
        result = engine.predict_subtask("work", {"cells": 400})
        assert result.time == pytest.approx(400 / 200e6)

    def test_cflow_vector_introspection(self, synthetic_hardware):
        engine = EvaluationEngine(tiny_model(), synthetic_hardware)
        clc = engine.cflow_vector("work", "body", {"cells": 7})
        assert clc.count("MFDG") == 7

    def test_cache_reused_across_identical_calls(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = 1 to 100 { call work; }")
        engine = EvaluationEngine(model, synthetic_hardware)
        prediction = engine.predict()
        assert prediction.breakdown["work"].calls == 100
        assert len(engine._subtask_cache) == 1
        engine.clear_cache()
        assert len(engine._subtask_cache) == 0


class TestCompiledPipeline:
    """The compiled pipeline must agree with the interpreted reference."""

    def test_tiny_model_bitwise_identical(self, synthetic_hardware):
        model = tiny_model(body="var i; for i = 1 to n { call work; } compute 0.25;")
        compiled = EvaluationEngine(model, synthetic_hardware).predict({"n": 3})
        interpreted = EvaluationEngine(model, synthetic_hardware,
                                       compiled=False).predict({"n": 3})
        assert compiled.total_time == interpreted.total_time
        assert set(compiled.breakdown) == set(interpreted.breakdown)
        for name, item in compiled.breakdown.items():
            assert item.time == interpreted.breakdown[name].time
            assert item.calls == interpreted.breakdown[name].calls

    def test_sweep3d_model_agrees_with_interpreter(self, sweep3d_model,
                                                   synthetic_hardware):
        for px, py in [(1, 1), (2, 2), (4, 4)]:
            deck = standard_deck("validation", px=px, py=py)
            variables = SweepWorkload(deck, px, py).model_variables()
            compiled = EvaluationEngine(sweep3d_model,
                                        synthetic_hardware).predict(variables)
            interpreted = EvaluationEngine(sweep3d_model, synthetic_hardware,
                                           compiled=False).predict(variables)
            assert compiled.total_time == interpreted.total_time
            for name, item in compiled.breakdown.items():
                assert item.time == interpreted.breakdown[name].time

    def test_branch_else_cflow_bitwise_identical(self, synthetic_hardware):
        """Accumulation order of branch/else arms matches the interpreter."""
        model = tiny_model(extra="""
        subtask fixup {
            partmp async;
            var cells = 1, p = 0.3;
            link async { work = flow(body); }
            cflow body {
                clc { AFDG = 3; }
                loop (cells) {
                    branch (p) { clc { MFDG = 7; AFDG = 1; } }
                    else { clc { DFDG = 2; } }
                }
            }
        }
        """, body="call work; call fixup;")
        for p in (0.1, 0.3, 0.7, 1.0 / 3.0):
            for cells in (1, 17, 1000):
                variables = {"cells": cells, "p": p}
                compiled = EvaluationEngine(model, synthetic_hardware)
                interpreted = EvaluationEngine(model, synthetic_hardware,
                                               compiled=False)
                assert (compiled.predict_subtask("fixup", variables).time
                        == interpreted.predict_subtask("fixup", variables).time)

    def test_precompiled_model_shared_across_engines(self, sweep3d_model,
                                                     synthetic_hardware,
                                                     validation_deck_2x2):
        compiled = CompiledModel(sweep3d_model)
        variables = SweepWorkload(validation_deck_2x2, 2, 2).model_variables()
        one = EvaluationEngine(sweep3d_model, synthetic_hardware, compiled=compiled)
        two = EvaluationEngine(sweep3d_model, synthetic_hardware, compiled=compiled)
        assert one.predict(variables).total_time == two.predict(variables).total_time

    def test_precompiled_model_must_match_model_set(self, sweep3d_model,
                                                    synthetic_hardware):
        other = tiny_model()
        with pytest.raises(EvaluationError):
            EvaluationEngine(other, synthetic_hardware,
                             compiled=CompiledModel(sweep3d_model))

    def test_cache_stats_exposed(self, sweep3d_model, synthetic_hardware,
                                 validation_deck_2x2):
        engine = EvaluationEngine(sweep3d_model, synthetic_hardware)
        engine.predict(SweepWorkload(validation_deck_2x2, 2, 2).model_variables())
        stats = engine.cache_stats
        assert stats.predictions == 1
        # 12 iterations x 4 subtasks: everything after iteration 1 is cached.
        assert stats.subtask_hits > stats.subtask_misses > 0


class TestHardwareStaleness:
    """Regression tests: the subtask cache is keyed on the hardware identity.

    The seed engine's cache ignored the hardware model, so swapping (or
    mutating) it without ``clear_cache()`` silently returned stale times.
    """

    def _hardware(self, synthetic_hardware, rate: float) -> HardwareModel:
        # A private instance whose cpu section can be mutated safely.
        return HardwareModel(
            name="staleness-test",
            cpu=CpuCostModel.from_achieved_rate(rate),
            mpi=synthetic_hardware.mpi,
            processors_per_node=2,
        )

    def test_swapping_hardware_without_clear_cache(self, sweep3d_model,
                                                   synthetic_hardware,
                                                   validation_deck_2x2):
        variables = SweepWorkload(validation_deck_2x2, 2, 2).model_variables()
        engine = EvaluationEngine(sweep3d_model, synthetic_hardware)
        slow = engine.predict(variables).total_time
        engine.hardware = synthetic_hardware.scaled_flop_rate(2.0)
        fast = engine.predict(variables).total_time
        assert fast < slow
        fresh = EvaluationEngine(
            sweep3d_model,
            synthetic_hardware.scaled_flop_rate(2.0)).predict(variables).total_time
        assert fast == fresh

    def test_mutating_hardware_in_place(self, sweep3d_model, synthetic_hardware,
                                        validation_deck_2x2):
        variables = SweepWorkload(validation_deck_2x2, 2, 2).model_variables()
        hardware = self._hardware(synthetic_hardware, 200e6)
        engine = EvaluationEngine(sweep3d_model, hardware)
        slow = engine.predict(variables).total_time
        # Mutate the cpu section in place (no clear_cache): the fingerprint
        # changes, so the stale cached subtask times must not be reused.
        fast_costs = CpuCostModel.from_achieved_rate(400e6).op_costs
        hardware.cpu.op_costs.clear()
        hardware.cpu.op_costs.update(fast_costs)
        fast = engine.predict(variables).total_time
        assert fast < slow

    def test_swapping_back_reuses_cache(self, sweep3d_model, synthetic_hardware,
                                        validation_deck_2x2):
        variables = SweepWorkload(validation_deck_2x2, 2, 2).model_variables()
        engine = EvaluationEngine(sweep3d_model, synthetic_hardware)
        first = engine.predict(variables).total_time
        upgraded = synthetic_hardware.scaled_flop_rate(1.5)
        engine.hardware = upgraded
        engine.predict(variables)
        engine.hardware = synthetic_hardware
        hits_before = engine.cache_stats.subtask_hits
        again = engine.predict(variables).total_time
        assert again == first
        assert engine.cache_stats.subtask_hits > hits_before

    def test_interpreted_facade_clears_on_swap(self, sweep3d_model,
                                               synthetic_hardware,
                                               validation_deck_2x2):
        variables = SweepWorkload(validation_deck_2x2, 2, 2).model_variables()
        engine = EvaluationEngine(sweep3d_model, synthetic_hardware,
                                  compiled=False)
        slow = engine.predict(variables).total_time
        engine.hardware = synthetic_hardware.scaled_flop_rate(2.0)
        assert engine.predict(variables).total_time < slow


class TestSweep3DModelPredictions:
    def test_prediction_structure(self, synthetic_engine, validation_deck_2x2):
        workload = SweepWorkload(validation_deck_2x2, 2, 2)
        prediction = synthetic_engine.predict(workload.model_variables())
        assert prediction.total_time > 0
        assert set(prediction.breakdown) == {"sweep", "source", "flux_err", "balance"}
        assert prediction.breakdown["sweep"].calls == 12
        assert prediction.application_name == "sweep3d"

    def test_sweep_dominates(self, synthetic_engine, validation_deck_2x2):
        """The paper: the sweep subtask is responsible for ~97% of the computation."""
        workload = SweepWorkload(validation_deck_2x2, 2, 2)
        prediction = synthetic_engine.predict(workload.model_variables())
        assert prediction.dominant_subtask() == "sweep"
        assert prediction.breakdown["sweep"].time / prediction.total_time > 0.9

    def test_weak_scaling_prediction_grows(self, synthetic_engine):
        times = []
        for px, py in [(1, 1), (2, 2), (4, 4), (8, 8)]:
            deck = standard_deck("validation", px=px, py=py)
            workload = SweepWorkload(deck, px, py)
            times.append(synthetic_engine.predict(workload.model_variables()).total_time)
        assert times == sorted(times)

    def test_iterations_scale_linearly(self, synthetic_engine):
        deck12 = standard_deck("validation", px=2, py=2, max_iterations=12)
        deck6 = standard_deck("validation", px=2, py=2, max_iterations=6)
        twelve = synthetic_engine.predict(SweepWorkload(deck12, 2, 2).model_variables())
        six = synthetic_engine.predict(SweepWorkload(deck6, 2, 2).model_variables())
        assert twelve.total_time == pytest.approx(2 * six.total_time, rel=1e-6)

    def test_faster_processor_lowers_prediction(self, sweep3d_model, synthetic_hardware,
                                                validation_deck_2x2):
        workload = SweepWorkload(validation_deck_2x2, 2, 2)
        slow = EvaluationEngine(sweep3d_model, synthetic_hardware)
        fast = EvaluationEngine(sweep3d_model, synthetic_hardware.scaled_flop_rate(1.5))
        assert (fast.predict(workload.model_variables()).total_time
                < slow.predict(workload.model_variables()).total_time)

    def test_describe_output(self, synthetic_engine, validation_deck_2x2):
        workload = SweepWorkload(validation_deck_2x2, 2, 2)
        text = synthetic_engine.predict(workload.model_variables()).describe()
        assert "sweep" in text and "%" in text
