"""Tests for the HMCL hardware model and its textual format."""

import pytest

from repro import units
from repro.core.clc import ClcVector
from repro.core.hmcl.model import CpuCostModel, MpiCostModel
from repro.core.hmcl.parser import format_hmcl, load_hmcl_resource, parse_hmcl
from repro.errors import HmclLookupError, HmclSyntaxError
from repro.profiling.curvefit import PiecewiseLinearModel

EXAMPLE = """
hardware TestMachine {
    meta {
        description = "an example machine";
        processors_per_node = 4;
    }
    cpu achieved-rate {
        AFDG = 0.005;   # 0.005 us per flop = 200 MFLOPS
        MFDG = 0.005;
        DFDG = 0.005;
        IFBR = 0.0;
        LFOR = 0.0;
    }
    mpi {
        send     { A = 16384; B = 2.0; C = 0.001; D = 10.0; E = 0.004; }
        recv     { A = 16384; B = 3.0; C = 0.001; D = 12.0; E = 0.004; }
        pingpong { A = 16384; B = 20.0; C = 0.009; D = 60.0; E = 0.008; }
    }
}
"""


class TestCpuCostModel:
    def test_from_achieved_rate(self):
        cpu = CpuCostModel.from_achieved_rate(110e6)
        assert cpu.seconds_per_flop == pytest.approx(1.0 / 110e6)
        assert cpu.achieved_mflops == pytest.approx(110.0)
        # Bookkeeping operations cost nothing under the coarse approach.
        assert cpu.cost("IFBR") == 0.0
        assert cpu.cost("LFOR") == 0.0

    def test_evaluate_counts_only_flops_under_coarse_model(self):
        cpu = CpuCostModel.from_achieved_rate(100e6)
        clc = ClcVector({"AFDG": 50, "MFDG": 50, "IFBR": 1000, "LDDG": 1000})
        assert cpu.evaluate(clc) == pytest.approx(100 / 100e6)

    def test_from_opcode_benchmark_counts_everything(self, p3_processor):
        cpu = CpuCostModel.from_opcode_benchmark(p3_processor.opcode_benchmark())
        clc = ClcVector({"AFDG": 10, "IFBR": 10})
        assert cpu.evaluate(clc) > cpu.cost("AFDG") * 10

    def test_invalid_rate(self):
        with pytest.raises(HmclLookupError):
            CpuCostModel.from_achieved_rate(0.0)

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(HmclLookupError):
            CpuCostModel(op_costs={"ZZZZ": 1.0})

    def test_missing_flop_cost(self):
        cpu = CpuCostModel(op_costs={"IFBR": 1e-9})
        with pytest.raises(HmclLookupError):
            _ = cpu.achieved_mflops


class TestMpiCostModel:
    def _model(self):
        line = PiecewiseLinearModel(A=1024, B=10e-6, C=1e-9, D=20e-6, E=2e-9)
        return MpiCostModel(send=line, recv=line, pingpong=line)

    def test_delivery_is_half_pingpong(self):
        model = self._model()
        assert model.delivery_cost(512) == pytest.approx(model.pingpong.evaluate(512) / 2)

    def test_collective_cost_grows_logarithmically(self):
        model = self._model()
        assert model.collective_cost(1, 8) == 0.0
        two = model.collective_cost(2, 8)
        sixteen = model.collective_cost(16, 8)
        assert sixteen == pytest.approx(4 * two)

    def test_negative_evaluation_clamped(self):
        line = PiecewiseLinearModel(A=1024, B=-5e-6, C=0.0, D=-5e-6, E=0.0)
        model = MpiCostModel(send=line, recv=line, pingpong=line)
        assert model.send_cost(100) == 0.0


class TestHardwareModel:
    def test_compute_time(self, synthetic_hardware):
        clc = ClcVector({"MFDG": 200e6})
        assert synthetic_hardware.compute_time(clc) == pytest.approx(1.0)

    def test_with_flop_rate(self, synthetic_hardware):
        upgraded = synthetic_hardware.with_flop_rate(400e6)
        assert upgraded.cpu.achieved_mflops == pytest.approx(400.0)
        # The mpi section is untouched.
        assert upgraded.mpi is synthetic_hardware.mpi

    def test_scaled_flop_rate(self, synthetic_hardware):
        faster = synthetic_hardware.scaled_flop_rate(1.5)
        assert faster.cpu.achieved_mflops == pytest.approx(300.0)

    def test_with_cpu_swaps_section(self, synthetic_hardware, p3_processor):
        legacy = synthetic_hardware.with_cpu(
            CpuCostModel.from_opcode_benchmark(p3_processor.opcode_benchmark()))
        assert legacy.cpu.source == "opcode-benchmark"
        assert legacy.name == synthetic_hardware.name


class TestHmclFormat:
    def test_parse_example(self):
        hw = parse_hmcl(EXAMPLE)
        assert hw.name == "TestMachine"
        assert hw.processors_per_node == 4
        assert hw.description == "an example machine"
        assert hw.cpu.achieved_mflops == pytest.approx(200.0)
        assert hw.mpi.send.B == pytest.approx(2.0 * units.USEC)
        assert hw.mpi.pingpong.evaluate(100) == pytest.approx(
            20e-6 + 100 * 0.009e-6)

    def test_roundtrip(self):
        original = parse_hmcl(EXAMPLE)
        again = parse_hmcl(format_hmcl(original))
        assert again.name == original.name
        assert again.cpu.op_costs == pytest.approx(original.cpu.op_costs)
        assert again.mpi.send.as_dict() == pytest.approx(original.mpi.send.as_dict())
        assert again.processors_per_node == original.processors_per_node

    def test_missing_cpu_section(self):
        with pytest.raises(HmclSyntaxError):
            parse_hmcl("hardware X { mpi { send { A=1; B=1; C=1; D=1; E=1; } "
                       "recv { A=1; B=1; C=1; D=1; E=1; } "
                       "pingpong { A=1; B=1; C=1; D=1; E=1; } } }")

    def test_missing_mpi_group(self):
        with pytest.raises(HmclSyntaxError):
            parse_hmcl("hardware X { cpu { MFDG = 1.0; } "
                       "mpi { send { A=1; B=1; C=1; D=1; E=1; } } }")

    def test_unknown_section(self):
        with pytest.raises(HmclSyntaxError):
            parse_hmcl("hardware X { gpu { } }")

    def test_unknown_cpu_mnemonic(self):
        with pytest.raises(HmclSyntaxError):
            parse_hmcl("hardware X { cpu { QQQQ = 1.0; } }")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(HmclSyntaxError):
            parse_hmcl(EXAMPLE + "\nextra")

    @pytest.mark.parametrize("resource,expected_mflops", [
        ("pentium3_myrinet.hmcl", 110.0),
        ("opteron_gige.hmcl", 350.0),
        ("altix_itanium2.hmcl", 225.0),
        ("hypothetical_opteron_myrinet.hmcl", 340.0),
    ])
    def test_shipped_resources(self, resource, expected_mflops):
        hw = load_hmcl_resource(resource)
        assert hw.cpu.achieved_mflops == pytest.approx(expected_mflops, rel=0.10)
        assert hw.processors_per_node >= 2
