"""Tests for the model object IR and the shipped SWEEP3D model."""

import pytest

from repro.core.ir import ModelObject, ModelSet, ObjectKind
from repro.core.psl.parser import parse_psl
from repro.errors import PslNameError


class TestModelSet:
    def test_validate_catches_missing_include(self):
        model = parse_psl("application a { include missing; proc init { compute 1; } }")
        with pytest.raises(PslNameError):
            model.validate()

    def test_validate_catches_missing_partmp(self):
        model = parse_psl("""
        application a { include s; proc init { call s; } }
        subtask s { partmp ghost; }
        """)
        with pytest.raises(PslNameError):
            model.validate()

    def test_validate_catches_missing_link_target(self):
        model = parse_psl("""
        application a { link ghost { x = 1; } proc init { compute 1; } }
        """)
        with pytest.raises(PslNameError):
            model.validate()

    def test_requires_exactly_one_application(self):
        model = parse_psl("subtask only { partmp t; } partmp t { var work = 0; }")
        with pytest.raises(PslNameError):
            _ = model.application
        two = parse_psl("application a { proc init { compute 1; } } "
                        "application b { proc init { compute 1; } }")
        with pytest.raises(PslNameError):
            _ = two.application

    def test_get_unknown_object(self):
        with pytest.raises(PslNameError):
            ModelSet().get("nothing")

    def test_merge(self):
        base = parse_psl("application a { include s; proc init { call s; } }"
                         "subtask s { partmp t; }")
        library = parse_psl("partmp t { var work = 0; option { strategy = \"async\"; } }")
        merged = base.merge(library)
        merged.validate()
        assert len(merged) == 3

    def test_proc_and_cflow_lookup_errors(self):
        obj = ModelObject(name="x", kind=ObjectKind.SUBTASK)
        with pytest.raises(PslNameError):
            obj.proc("init")
        with pytest.raises(PslNameError):
            obj.cflow("work")

    def test_strategy_defaults_to_name(self):
        obj = ModelObject(name="pipeline", kind=ObjectKind.PARTMP)
        assert obj.strategy == "pipeline"


class TestShippedSweep3DModel:
    def test_object_hierarchy_matches_figure3(self, sweep3d_model):
        """The shipped model mirrors the object hierarchy of Figure 3."""
        names = set(sweep3d_model.objects)
        assert {"sweep3d", "sweep", "source", "flux_err", "balance",
                "pipeline", "globalsum", "globalmax", "async"} <= names
        app = sweep3d_model.application
        assert app.name == "sweep3d"
        # Four subtask objects, as in the paper.
        assert len(sweep3d_model.subtasks()) == 4
        assert len(sweep3d_model.templates()) == 4

    def test_subtask_templates(self, sweep3d_model):
        assert sweep3d_model.get("sweep").partmp == "pipeline"
        assert sweep3d_model.get("flux_err").partmp == "globalmax"
        assert sweep3d_model.get("balance").partmp == "globalsum"
        assert sweep3d_model.get("source").partmp == "async"

    def test_externally_modifiable_variables(self, sweep3d_model):
        app = sweep3d_model.application
        for name in ("it", "jt", "kt", "mk", "mmi", "npe_i", "npe_j", "n_iterations"):
            assert name in app.variables

    def test_application_links_every_subtask(self, sweep3d_model):
        app = sweep3d_model.application
        assert set(app.links) == {"sweep", "source", "flux_err", "balance"}

    def test_hierarchy_listing(self, sweep3d_model):
        hierarchy = sweep3d_model.hierarchy()
        assert "sweep" in hierarchy["sweep3d"]
        assert "pipeline" in hierarchy["sweep"]

    def test_sweep_cflow_matches_kernel_characterisation(self, sweep3d_model):
        from repro.core.psl.interpreter import evaluate_cflow
        from repro.sweep3d.kernel import SweepKernel
        sweep = sweep3d_model.get("sweep")
        variables = {"it": 50, "jt": 50, "kt": 50, "mk": 10, "mmi": 3,
                     "npe_i": 1, "npe_j": 1, "angles_per_octant": 6}
        tally = evaluate_cflow(sweep.cflow("work_block"), variables,
                               resolve_cflow=sweep.cflow)
        expected_flops = SweepKernel.flops_per_cell_angle() * 50 * 50 * 10 * 3
        assert tally.flops == pytest.approx(expected_flops)
