"""Tests for the PSL lexer, parser and expression/cflow interpreter."""

import pytest

from repro.core.ir import ObjectKind
from repro.core.psl import ast
from repro.core.psl.interpreter import evaluate_cflow, evaluate_expression
from repro.core.psl.lexer import tokenize
from repro.core.psl.parser import parse_psl
from repro.errors import PslEvaluationError, PslNameError, PslSyntaxError


class TestLexer:
    def test_tokenises_keywords_and_numbers(self):
        tokens = tokenize("subtask sweep { var it = 50; }")
        kinds = [t.kind for t in tokens]
        assert kinds[0] == "keyword"
        assert any(t.kind == "number" and t.text == "50" for t in tokens)

    def test_comments_removed(self):
        tokens = tokenize("// a comment\nvar x = 1; /* block */ # hash\n")
        assert all("comment" not in t.kind for t in tokens)
        assert any(t.text == "x" for t in tokens)

    def test_line_numbers(self):
        tokens = tokenize("var a = 1;\nvar b = 2;")
        b_token = [t for t in tokens if t.text == "b"][0]
        assert b_token.line == 2

    def test_unexpected_character(self):
        with pytest.raises(PslSyntaxError):
            tokenize("var x = $;")


class TestParser:
    def test_parse_minimal_application(self):
        model = parse_psl("""
        application demo {
            var n = 3;
            proc init { compute n * 2; }
        }
        """)
        app = model.application
        assert app.kind is ObjectKind.APPLICATION
        assert "init" in app.procs
        assert "n" in app.variables

    def test_parse_subtask_with_links_and_cflow(self):
        model = parse_psl("""
        subtask work {
            partmp async;
            var cells = 10;
            link async { work = flow(body); }
            cflow body { loop (cells) { clc { AFDG = 2; MFDG = 1; } } }
        }
        partmp async { var work = 0; option { strategy = "async"; } }
        """)
        subtask = model.get("work")
        assert subtask.partmp == "async"
        assert "async" in subtask.links
        assert "body" in subtask.cflows
        assert model.get("async").strategy == "async"

    def test_includes_accumulate(self):
        model = parse_psl("""
        application a { include b, c; proc init { call b; } }
        subtask b { partmp t; }
        subtask c { partmp t; }
        partmp t { var work = 0; option { strategy = "async"; } }
        """)
        assert model.application.includes == ["b", "c"]

    def test_duplicate_object_rejected(self):
        with pytest.raises(PslNameError):
            parse_psl("subtask a { } subtask a { }")

    def test_syntax_error_reports_position(self):
        with pytest.raises(PslSyntaxError) as excinfo:
            parse_psl("application demo {\n  var = 5;\n}")
        assert excinfo.value.line is not None

    def test_unknown_object_kind(self):
        with pytest.raises(PslSyntaxError):
            parse_psl("gadget foo { }")

    def test_for_with_step_and_if(self):
        model = parse_psl("""
        application demo {
            var n = 4;
            proc init {
                var i;
                for i = 1 to n step 2 {
                    if (i > 2) { compute 1; } else { compute 2; }
                }
            }
        }
        """)
        body = model.application.proc("init").body
        assert any(isinstance(stmt, ast.ForStmt) for stmt in body)

    def test_option_values(self):
        model = parse_psl("""
        partmp p { option { strategy = "pipeline"; weight = 2.5; flag = yes; } }
        """)
        options = model.get("p").options
        assert options["strategy"] == "pipeline"
        assert options["weight"] == 2.5
        assert options["flag"] == "yes"

    def test_step_statements_parsed(self):
        model = parse_psl("""
        partmp p {
            var bytes = 100, work = 0;
            proc stage {
                step mpirecv { direction = "ew"; bytes = bytes; }
                step cpu { time = work; }
            }
        }
        """)
        steps = model.get("p").proc("stage").body
        assert len(steps) == 2
        assert all(isinstance(s, ast.StepStmt) for s in steps)
        assert steps[0].device == "mpirecv"


class TestExpressionInterpreter:
    def evaluate(self, text: str, variables=None):
        model = parse_psl(f"application t {{ var dummy = {text}; proc init {{ compute 0; }} }}")
        expr = model.application.variables["dummy"]
        return evaluate_expression(expr, variables or {})

    def test_arithmetic_precedence(self):
        assert self.evaluate("2 + 3 * 4") == 14
        assert self.evaluate("(2 + 3) * 4") == 20
        assert self.evaluate("10 / 4") == 2.5
        assert self.evaluate("-3 + 1") == -2

    def test_functions(self):
        assert self.evaluate("ceil(7 / 2)") == 4
        assert self.evaluate("floor(7 / 2)") == 3
        assert self.evaluate("max(2, 9, 4)") == 9
        assert self.evaluate("min(2, 9, 4)") == 2
        assert self.evaluate("log2(8)") == 3
        assert self.evaluate("abs(0 - 5)") == 5

    def test_exact_integer_ceil(self):
        # ceil(kt / mk) must not round 50/10 up to 6.
        assert self.evaluate("ceil(50 / 10)") == 5

    def test_comparisons_and_logic(self):
        assert self.evaluate("3 < 4") == 1.0
        assert self.evaluate("3 >= 4") == 0.0
        assert self.evaluate("1 && 0") == 0.0
        assert self.evaluate("1 || 0") == 1.0
        assert self.evaluate("2 == 2") == 1.0
        assert self.evaluate("2 != 2") == 0.0

    def test_variables(self):
        expr = ast.BinOp("*", ast.VarRef("a"), ast.VarRef("b"))
        assert evaluate_expression(expr, {"a": 6, "b": 7}) == 42

    def test_undefined_variable(self):
        with pytest.raises(PslNameError):
            evaluate_expression(ast.VarRef("nope"), {})

    def test_division_by_zero(self):
        with pytest.raises(PslEvaluationError):
            self.evaluate("1 / 0")

    def test_unknown_function(self):
        with pytest.raises(PslEvaluationError):
            self.evaluate("frobnicate(3)")

    def test_flow_requires_evaluator(self):
        expr = ast.FuncCall("flow", [ast.VarRef("body")])
        with pytest.raises(PslEvaluationError):
            evaluate_expression(expr, {})
        assert evaluate_expression(expr, {}, flow_evaluator=lambda name: 2.5) == 2.5


class TestCflowInterpreter:
    def parse_cflow(self, body: str):
        model = parse_psl(f"subtask s {{ partmp t; cflow main {{ {body} }} }}"
                          " partmp t { var work = 0; option { strategy = \"async\"; } }")
        return model.get("s").cflows["main"]

    def test_clc_accumulation(self):
        cflow = self.parse_cflow("clc { AFDG = 2; MFDG = 3; } clc { AFDG = 1; }")
        tally = evaluate_cflow(cflow, {})
        assert tally.count("AFDG") == 3
        assert tally.count("MFDG") == 3

    def test_loop_scaling(self):
        cflow = self.parse_cflow("loop (n) { clc { AFDG = 2; } }")
        assert evaluate_cflow(cflow, {"n": 10}).count("AFDG") == 20

    def test_nested_loops(self):
        cflow = self.parse_cflow("loop (n) { loop (m) { clc { MFDG = 1; } } }")
        assert evaluate_cflow(cflow, {"n": 3, "m": 4}).count("MFDG") == 12

    def test_branch_weighting(self):
        cflow = self.parse_cflow(
            "branch (0.25) { clc { AFDG = 4; } } else { clc { AFDG = 8; } }")
        assert evaluate_cflow(cflow, {}).count("AFDG") == pytest.approx(0.25 * 4 + 0.75 * 8)

    def test_invalid_probability(self):
        cflow = self.parse_cflow("branch (2) { clc { AFDG = 1; } }")
        with pytest.raises(PslEvaluationError):
            evaluate_cflow(cflow, {})

    def test_negative_loop_count_rejected(self):
        cflow = self.parse_cflow("loop (0 - 5) { clc { AFDG = 1; } }")
        with pytest.raises(PslEvaluationError):
            evaluate_cflow(cflow, {})

    def test_cflow_call_inlining(self):
        model = parse_psl("""
        subtask s {
            partmp t;
            cflow inner { clc { AFDG = 5; } }
            cflow outer { loop (2) { call inner; } }
        }
        partmp t { var work = 0; option { strategy = "async"; } }
        """)
        subtask = model.get("s")
        tally = evaluate_cflow(subtask.cflows["outer"], {}, resolve_cflow=subtask.cflow)
        assert tally.count("AFDG") == 10

    def test_cflow_call_without_resolver(self):
        cflow = self.parse_cflow("call other;")
        with pytest.raises(PslEvaluationError):
            evaluate_cflow(cflow, {})
