"""Tests for the parallel template strategies."""

import pytest

from repro.core.templates import (
    AsyncStrategy,
    GlobalMaxStrategy,
    GlobalSumStrategy,
    PipelineStrategy,
    available_strategies,
    get_strategy,
    register_strategy,
)
from repro.core.templates.base import StageSpec, StageStep
from repro.errors import EvaluationError


def pipeline_stage(ew_bytes=12000.0, ns_bytes=12000.0, work=1e-3) -> StageSpec:
    return StageSpec(steps=[
        StageStep("mpirecv", {"direction": "ew", "bytes": ew_bytes}),
        StageStep("mpirecv", {"direction": "ns", "bytes": ns_bytes}),
        StageStep("cpu", {"time": work}),
        StageStep("mpisend", {"direction": "ew", "bytes": ew_bytes}),
        StageStep("mpisend", {"direction": "ns", "bytes": ns_bytes}),
    ])


def pipeline_variables(npe_i=2, npe_j=2, kb=5, ab=2, work=1e-3) -> dict:
    return {"npe_i": npe_i, "npe_j": npe_j, "n_k_blocks": kb,
            "n_angle_blocks": ab, "ew_bytes": 12000.0, "ns_bytes": 12000.0,
            "work": work}


class TestRegistry:
    def test_builtin_strategies_registered(self):
        assert {"pipeline", "globalsum", "globalmax", "async"} <= set(available_strategies())

    def test_lookup(self):
        assert isinstance(get_strategy("pipeline"), PipelineStrategy)
        with pytest.raises(KeyError):
            get_strategy("ring")

    def test_custom_registration(self):
        class Custom:
            name = "custom-test"

            def evaluate(self, variables, stage, hardware):
                raise NotImplementedError

        register_strategy(Custom())
        assert "custom-test" in available_strategies()


class TestStageSpec:
    def test_cpu_seconds(self):
        spec = pipeline_stage(work=2e-3)
        assert spec.cpu_seconds == pytest.approx(2e-3)

    def test_step_parameter_validation(self):
        step = StageStep("cpu", {"time": "lots"})
        with pytest.raises(EvaluationError):
            step.number("time")
        with pytest.raises(EvaluationError):
            StageStep("cpu", {}).number("time")

    def test_by_device(self):
        spec = pipeline_stage()
        assert len(spec.recv_steps()) == 2
        assert len(spec.send_steps()) == 2
        assert len(spec.by_device("cpu")) == 1


class TestAsyncStrategy:
    def test_returns_serial_work(self, synthetic_hardware):
        result = AsyncStrategy().evaluate({"work": 0.25}, StageSpec(), synthetic_hardware)
        assert result.time == pytest.approx(0.25)
        assert result.communication_time == 0.0

    def test_stage_cpu_step_takes_precedence(self, synthetic_hardware):
        stage = StageSpec(steps=[StageStep("cpu", {"time": 0.5})])
        result = AsyncStrategy().evaluate({"work": 0.1}, stage, synthetic_hardware)
        assert result.time == pytest.approx(0.5)


class TestReductionStrategies:
    def test_single_rank_has_no_communication(self, synthetic_hardware):
        result = GlobalSumStrategy().evaluate({"npe": 1, "work": 1e-3, "bytes": 8},
                                              StageSpec(), synthetic_hardware)
        assert result.communication_time == 0.0
        assert result.time == pytest.approx(1e-3)

    def test_cost_grows_with_rank_count(self, synthetic_hardware):
        small = GlobalMaxStrategy().evaluate({"npe": 4, "work": 0.0, "bytes": 8},
                                             StageSpec(), synthetic_hardware)
        large = GlobalMaxStrategy().evaluate({"npe": 1024, "work": 0.0, "bytes": 8},
                                             StageSpec(), synthetic_hardware)
        assert large.time > small.time
        # log2(1024)/log2(4) = 5x more tree rounds.
        assert large.time == pytest.approx(5 * small.time, rel=1e-6)

    def test_sum_and_max_agree(self, synthetic_hardware):
        variables = {"npe": 64, "work": 1e-4, "bytes": 8}
        total = GlobalSumStrategy().evaluate(variables, StageSpec(), synthetic_hardware)
        largest = GlobalMaxStrategy().evaluate(variables, StageSpec(), synthetic_hardware)
        assert total.time == pytest.approx(largest.time)


class TestPipelineStrategy:
    def test_single_processor_is_pure_compute(self, synthetic_hardware):
        variables = pipeline_variables(npe_i=1, npe_j=1, work=1e-3)
        result = PipelineStrategy().evaluate(variables, pipeline_stage(work=1e-3),
                                             synthetic_hardware)
        blocks = 8 * 5 * 2
        assert result.time == pytest.approx(blocks * 1e-3)
        assert result.communication_time == pytest.approx(0.0, abs=1e-12)

    def test_time_grows_with_array_size(self, synthetic_hardware):
        strategy = PipelineStrategy()
        times = []
        for npe in [(1, 1), (2, 2), (4, 4), (8, 8)]:
            variables = pipeline_variables(npe_i=npe[0], npe_j=npe[1])
            times.append(strategy.evaluate(variables, pipeline_stage(),
                                           synthetic_hardware).time)
        assert times == sorted(times)
        assert times[-1] > times[0]

    def test_pipeline_fill_scales_with_perimeter(self, synthetic_hardware):
        """Doubling Px+Py roughly doubles the extra (non-compute) time."""
        strategy = PipelineStrategy()
        base = pipeline_variables(npe_i=1, npe_j=1)
        serial = strategy.evaluate(base, pipeline_stage(), synthetic_hardware).time
        small = strategy.evaluate(pipeline_variables(npe_i=4, npe_j=4),
                                  pipeline_stage(), synthetic_hardware).time
        large = strategy.evaluate(pipeline_variables(npe_i=8, npe_j=8),
                                  pipeline_stage(), synthetic_hardware).time
        assert (large - serial) > 1.5 * (small - serial)

    def test_vectorised_matches_reference_implementation(self, synthetic_hardware):
        """The numpy anti-diagonal recurrence equals the straightforward loop."""
        strategy = PipelineStrategy()
        for npe_i, npe_j, kb, ab in [(1, 1, 2, 1), (2, 3, 2, 2), (4, 2, 3, 1), (3, 5, 2, 2)]:
            variables = pipeline_variables(npe_i=npe_i, npe_j=npe_j, kb=kb, ab=ab,
                                           work=3e-4)
            stage = pipeline_stage(work=3e-4)
            fast = strategy.evaluate(variables, stage, synthetic_hardware)
            slow = strategy.reference_evaluate(variables, stage, synthetic_hardware)
            assert fast.time == pytest.approx(slow.time, rel=1e-12)

    def test_rectangular_arrays_differ_from_square(self, synthetic_hardware):
        strategy = PipelineStrategy()
        square = strategy.evaluate(pipeline_variables(npe_i=4, npe_j=4),
                                   pipeline_stage(), synthetic_hardware).time
        row = strategy.evaluate(pipeline_variables(npe_i=1, npe_j=16),
                                pipeline_stage(), synthetic_hardware).time
        # A 1x16 pipeline has a longer fill (15 hops vs 6) for the same work.
        assert row > square

    def test_work_dominates_for_large_blocks(self, synthetic_hardware):
        """With heavy per-block work, time = blocks x work plus a bounded fill.

        On a 2x2 array the far corner waits at most 2 hops each time the
        sweep origin changes corner (4 octant pairs), so the overhead is
        bounded by ~8 extra block times.
        """
        strategy = PipelineStrategy()
        variables = pipeline_variables(npe_i=2, npe_j=2, work=1.0)
        result = strategy.evaluate(variables, pipeline_stage(work=1.0), synthetic_hardware)
        blocks = 8 * 5 * 2
        assert result.time >= blocks * 1.0
        assert result.time <= (blocks + 8) * 1.0 + 1.0

    def test_missing_messages_rejected(self, synthetic_hardware):
        with pytest.raises(EvaluationError):
            PipelineStrategy().evaluate(pipeline_variables(),
                                        StageSpec(steps=[StageStep("cpu", {"time": 1.0})]),
                                        synthetic_hardware)

    def test_missing_variables_rejected(self, synthetic_hardware):
        with pytest.raises(EvaluationError):
            PipelineStrategy().evaluate({"npe_i": 2}, pipeline_stage(), synthetic_hardware)

    def test_details_reported(self, synthetic_hardware):
        result = PipelineStrategy().evaluate(pipeline_variables(), pipeline_stage(),
                                             synthetic_hardware)
        assert result.details["blocks_per_iteration"] == 80
        assert result.details["work_per_block"] == pytest.approx(1e-3)
        assert result.details["npe_i"] == 2
