"""Tests for the workload binding helper."""

import pytest

from repro.core.workload import SweepWorkload, load_sweep3d_model
from repro.errors import ExperimentError
from repro.sweep3d.input import standard_deck


class TestSweepWorkload:
    def test_model_variables(self):
        deck = standard_deck("validation", px=4, py=6)
        workload = SweepWorkload(deck, 4, 6)
        variables = workload.model_variables()
        assert variables["it"] == 200 and variables["jt"] == 300
        assert variables["npe_i"] == 4 and variables["npe_j"] == 6
        assert variables["n_iterations"] == 12
        assert variables["angles_per_octant"] == 6
        assert workload.nranks == 24
        assert workload.cells_per_processor == (50, 50, 50)

    def test_uneven_decomposition_rejected(self):
        deck = standard_deck("validation", px=2, py=2)   # 100x100x50
        with pytest.raises(ExperimentError):
            SweepWorkload(deck, 3, 2)

    def test_invalid_processor_counts(self):
        deck = standard_deck("validation", px=2, py=2)
        with pytest.raises(ExperimentError):
            SweepWorkload(deck, 0, 2)

    def test_describe(self):
        deck = standard_deck("asci-20m", px=2, py=2)
        text = SweepWorkload(deck, 2, 2).describe()
        assert "2x2 processors" in text
        assert "5x5x100 per processor" in text

    def test_model_loads_and_validates(self):
        model = load_sweep3d_model()
        assert model.application.name == "sweep3d"
