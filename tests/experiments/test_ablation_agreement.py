"""Tests for the benchmarking ablation and the model-agreement experiments."""

import pytest

from repro.experiments.ablation import run_opcode_ablation
from repro.experiments.agreement import run_model_agreement
from repro.experiments.paper_data import FIGURE8_STUDY


class TestOpcodeAblation:
    @pytest.fixture(scope="class")
    def ablation(self):
        return run_opcode_ablation(max_iterations=6)

    def test_coarse_approach_is_accurate(self, ablation):
        assert abs(ablation.coarse_error_pct) < 10.0

    def test_legacy_approach_is_poor(self, ablation):
        """Reproduces the paper's 'error as large as 50%' on the Opteron."""
        assert abs(ablation.legacy_error_pct) > 25.0

    def test_improvement_factor(self, ablation):
        assert ablation.improvement_factor > 3.0

    def test_targets_opteron_by_default(self, ablation):
        assert ablation.machine_name == "opteron-gige"

    def test_describe(self, ablation):
        text = ablation.describe()
        assert "coarse" in text and "legacy" in text

    def test_paper_measurement_mode(self):
        ablation = run_opcode_ablation(simulate_measurement=False, max_iterations=12)
        assert ablation.measured == pytest.approx(8.98, rel=1e-6)
        assert abs(ablation.coarse_error_pct) < 15.0


class TestModelAgreement:
    @pytest.fixture(scope="class")
    def agreement(self):
        return run_model_agreement(FIGURE8_STUDY, processor_counts=[16, 256])

    def test_all_models_evaluated(self, agreement):
        assert len(agreement.comparisons) == 2
        for comparison in agreement.comparisons:
            assert comparison.pace > 0
            assert comparison.loggp > 0
            assert comparison.hoisie > 0

    def test_models_concur(self, agreement):
        """Section 6: the PACE results agree with the related analytic models."""
        assert agreement.worst_spread < 0.6
        assert agreement.worst_deviation_from_pace < 0.6

    def test_describe(self, agreement):
        text = agreement.describe()
        assert "figure8" in text and "worst spread" in text
