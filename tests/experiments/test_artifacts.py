"""Tests for study artifact export (JSON/CSV + run manifest)."""

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.artifacts import (
    read_manifest,
    write_study_artifacts,
)
from repro.experiments.study import StudyRunner, build_spec, run_study


@pytest.fixture(scope="module")
def table_result():
    return run_study(build_spec("table2", max_pes=6, max_iterations=1))


class TestArtifactLayout:
    def test_json_csv_and_manifest(self, tmp_path, table_result):
        manifest_path = write_study_artifacts([table_result], tmp_path)
        assert manifest_path == tmp_path / "manifest.json"
        assert (tmp_path / "table2.json").exists()
        assert (tmp_path / "table2.csv").exists()

        data = json.loads((tmp_path / "table2.json").read_text())
        assert data["study"] == "table2"
        assert data["spec_hash"] == table_result.spec_hash
        assert data["machine"] == "opteron-gige"
        assert len(data["rows"]) == len(table_result.rows)

        with open(tmp_path / "table2.csv", newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(table_result.rows)
        assert rows[0]["data_size"] == table_result.rows[0]["data_size"]
        assert float(rows[0]["predicted_s"]) == pytest.approx(
            table_result.rows[0]["predicted_s"])

    def test_manifest_contents(self, tmp_path, table_result):
        write_study_artifacts(table_result, tmp_path)   # single result accepted
        manifest = read_manifest(tmp_path)
        assert "version" in manifest
        (entry,) = manifest["studies"]
        assert entry["study"] == "table2"
        assert entry["spec"]["study"] == "table2"
        assert entry["spec_hash"] == table_result.spec_hash
        assert entry["machine_fingerprint"]
        assert entry["rows"] == len(table_result.rows)
        assert entry["artifacts"] == {"json": "table2.json", "csv": "table2.csv"}

    def test_manifest_surfaces_cost_table_accounting(self, tmp_path,
                                                     table_result):
        """The SweepCostTable hit/miss counts reach the manifest (and the
        per-study JSON), instead of being collected and dropped."""
        write_study_artifacts(table_result, tmp_path)
        (entry,) = read_manifest(tmp_path)["studies"]
        assert entry["cache"]["subtask_hits"] == \
            table_result.cache_stats.subtask_hits
        assert entry["cache"]["subtask_misses"] == \
            table_result.cache_stats.subtask_misses
        # The measurement grid prices every block shape once, then serves
        # every other charge from the memo: hits dominate misses.
        assert entry["cache"]["subtask_hits"] > entry["cache"]["subtask_misses"] > 0
        data = json.loads((tmp_path / "table2.json").read_text())
        assert data["cache"]["subtask_hits"] == entry["cache"]["subtask_hits"]

    def test_load_study_results_roundtrips_cost_table_stats(self, tmp_path,
                                                            table_result):
        from repro.experiments.artifacts import load_study_results
        write_study_artifacts(table_result, tmp_path)
        (loaded,) = load_study_results(tmp_path)
        assert loaded.cache_stats.subtask_hits == \
            table_result.cache_stats.subtask_hits
        assert loaded.cache_stats.subtask_misses == \
            table_result.cache_stats.subtask_misses

    def test_smoke_fleet_layout(self, tmp_path):
        results = StudyRunner().run_many(["figure8", "scaling"], smoke=True)
        write_study_artifacts(results, tmp_path / "nested" / "deep")
        manifest = read_manifest(tmp_path / "nested" / "deep")
        assert [entry["study"] for entry in manifest["studies"]] \
            == ["figure8", "scaling"]
        for entry in manifest["studies"]:
            assert (tmp_path / "nested" / "deep" / entry["artifacts"]["json"]).exists()
            assert (tmp_path / "nested" / "deep" / entry["artifacts"]["csv"]).exists()

    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="no study results"):
            write_study_artifacts([], tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read manifest"):
            read_manifest(tmp_path)

class TestShardedRuns:
    def test_same_study_shards_never_overwrite(self, tmp_path):
        """Two specs of one study (sharded grid) keep distinct artifacts."""
        shard_a = build_spec("table2", max_pes=4, max_iterations=1,
                             simulate_measurement=False)
        shard_b = build_spec("table2", max_pes=6, max_iterations=1,
                             simulate_measurement=False)
        results = StudyRunner().run_many([shard_a, shard_b])
        write_study_artifacts(results, tmp_path)
        manifest = read_manifest(tmp_path)
        names = [entry["artifacts"]["json"] for entry in manifest["studies"]]
        assert len(set(names)) == 2
        for entry, result in zip(manifest["studies"], results):
            data = json.loads((tmp_path / entry["artifacts"]["json"]).read_text())
            assert data["spec_hash"] == entry["spec_hash"] == result.spec_hash
            assert len(data["rows"]) == len(result.rows)

    def test_identical_specs_twice_still_distinct_files(self, tmp_path):
        spec = build_spec("figure8", processor_counts=[1, 4],
                          rate_factors=[1.0])
        results = StudyRunner().run_many([spec, spec])
        write_study_artifacts(results, tmp_path)
        manifest = read_manifest(tmp_path)
        names = [entry["artifacts"]["json"] for entry in manifest["studies"]]
        assert len(set(names)) == 2
        for name in names:
            assert (tmp_path / name).exists()
