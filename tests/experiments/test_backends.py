"""Tests for the scenario-evaluation backends (predict vs simulate)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.backends import (
    PredictionBackend,
    SimulationBackend,
    available_backends,
    create_backend,
    machine_fingerprint,
    model_fingerprint,
    simulation_grid,
)
from repro.experiments.sweep import Scenario, SweepRunner
from repro.machines.presets import get_machine
from repro.simnet.noise import derive_seed
from repro.sweep3d.input import standard_deck


@pytest.fixture(scope="module")
def p3_machine():
    return get_machine("pentium3-myrinet")


def sim_backend(machine, **kwargs):
    kwargs.setdefault("max_iterations", 2)
    return SimulationBackend(machine, **kwargs)


class TestRegistry:
    def test_both_backends_registered(self):
        assert {"predict", "simulate"} <= set(available_backends())

    def test_create_by_name(self, p3_machine):
        backend = create_backend("simulate", machine=p3_machine)
        assert backend.name == "simulate"
        assert create_backend("predict").name == "predict"

    def test_unknown_name_rejected(self):
        with pytest.raises(ExperimentError, match="unknown scenario backend"):
            create_backend("quantum")


class TestSimulationBackend:
    def test_bit_identical_to_per_point_engine_runs(self, p3_machine):
        """The acceptance property: plan reuse never changes a result."""
        backend = sim_backend(p3_machine)
        grid = simulation_grid([(1, 1), (2, 2), (2, 3), (3, 3)])
        outcomes = SweepRunner(backend=backend).run(grid)
        for outcome in outcomes:
            result = outcome.result
            deck = standard_deck("validation", px=result.px, py=result.py,
                                 max_iterations=2)
            reference = p3_machine.simulate(deck, result.px, result.py,
                                            seed_offset=result.seed_offset)
            assert result.elapsed_time == reference.elapsed_time
            assert result.rank_finish_times == tuple(
                r.finish_time for r in reference.simulation.ranks)
            assert result.total_messages == reference.total_messages

    def test_worker_fanout_determinism(self, p3_machine):
        """Same scenarios => bit-identical results at workers=1 and workers=3."""
        grid = simulation_grid([(px, py) for px in (1, 2, 3) for py in (1, 2)])
        serial = SweepRunner(backend=sim_backend(p3_machine), workers=1).run(grid)
        fanned = SweepRunner(backend=sim_backend(p3_machine), workers=3).run(grid)
        assert [o.total_time for o in serial] == [o.total_time for o in fanned]
        assert ([o.result.rank_finish_times for o in serial]
                == [o.result.rank_finish_times for o in fanned])
        assert [o.scenario.label for o in fanned] == [s.label for s in grid]

    def test_scenario_seed_is_identity_derived(self, p3_machine):
        """Seeds come from scenario identity, not evaluation order."""
        backend = sim_backend(p3_machine)
        grid = list(simulation_grid([(2, 2), (1, 1)]))
        forward = SweepRunner(backend=sim_backend(p3_machine)).run(grid)
        backward = SweepRunner(backend=sim_backend(p3_machine)).run(grid[::-1])
        assert forward[0].total_time == backward[1].total_time
        assert forward[1].total_time == backward[0].total_time
        deck, px, py = backend.deck_for(grid[0])
        assert backend.seed_offset_for(grid[0], deck, px, py) == derive_seed(
            "sweep3d-simulate", p3_machine.name, deck.it, deck.jt, deck.kt,
            deck.mk, deck.mmi, deck.sn, deck.max_iterations, px, py)

    def test_explicit_seed_override(self, p3_machine):
        base = {"px": 2, "py": 2}
        pinned_a = Scenario(label="a", variables={**base, "seed": 5})
        pinned_b = Scenario(label="b", variables={**base, "seed": 5})
        other = Scenario(label="c", variables={**base, "seed": 6})
        outcomes = SweepRunner(backend=sim_backend(p3_machine)).run(
            [pinned_a, pinned_b, other])
        assert outcomes[0].total_time == outcomes[1].total_time
        assert outcomes[2].total_time != outcomes[0].total_time

    def test_plan_and_cost_table_reuse_accounting(self, p3_machine):
        runner = SweepRunner(backend=sim_backend(p3_machine))
        grid = simulation_grid([(2, 2)])
        runner.run(list(grid) + list(grid))        # second point reuses the plan
        stats = runner.stats
        assert stats.predictions == 2
        assert stats.flow_misses == 1              # one plan built
        assert stats.flow_hits == 1                # ... reused once
        assert stats.subtask_hits > stats.subtask_misses > 0   # cost table

    def test_execution_modes_are_bit_identical(self, p3_machine):
        """auto (trace replay) == forced engine == forced replay."""
        grid = simulation_grid([(2, 2), (2, 3)])
        by_mode = {}
        for mode in ("auto", "engine", "replay"):
            outcomes = SweepRunner(
                backend=sim_backend(p3_machine, execution=mode)).run(grid)
            by_mode[mode] = [(o.result.elapsed_time,
                              o.result.rank_finish_times,
                              o.result.total_messages,
                              o.result.total_bytes,
                              o.result.compute_fraction) for o in outcomes]
        assert by_mode["auto"] == by_mode["engine"] == by_mode["replay"]

    def test_auto_mode_serves_modelled_scenarios_from_replay(self, p3_machine):
        backend = sim_backend(p3_machine)          # execution defaults to auto
        executor = backend.compile()
        grid = list(simulation_grid([(2, 2)]))
        for scenario in grid + grid:
            executor.evaluate(scenario)
        assert executor.trace_replays == 2
        forced = sim_backend(p3_machine, execution="engine").compile()
        forced.evaluate(grid[0])
        assert forced.trace_replays == 0

    def test_unknown_execution_mode_rejected(self, p3_machine):
        with pytest.raises(ExperimentError, match="execution mode"):
            sim_backend(p3_machine, execution="warp")

    def test_missing_px_py_rejected(self, p3_machine):
        runner = SweepRunner(backend=sim_backend(p3_machine))
        with pytest.raises(ExperimentError, match="px"):
            runner.run([Scenario(label="bad", variables={"mk": 10})])

    def test_deck_overrides(self, p3_machine):
        backend = sim_backend(p3_machine)
        scenario = Scenario(label="mk1", variables={"px": 2, "py": 2, "mk": 1,
                                                    "max_iterations": 1})
        deck, px, py = backend.deck_for(scenario)
        assert (deck.mk, deck.max_iterations, px, py) == (1, 1, 2, 2)

    def test_scenario_deck_variable_selects_the_deck(self, p3_machine):
        """simulation_grid(deck=...) must change what is simulated, not just tags."""
        backend = sim_backend(p3_machine)     # default deck: validation
        grid = simulation_grid([(2, 2)], deck="mini", max_iterations=1)
        deck, _, _ = backend.deck_for(grid.scenarios[0])
        reference = standard_deck("mini", px=2, py=2, max_iterations=1)
        assert (deck.it, deck.jt, deck.kt) == (reference.it, reference.jt,
                                               reference.kt)
        # ... and the fingerprint (hence the disk-cache key) moves with it.
        default_grid = simulation_grid([(2, 2)], max_iterations=1)
        assert (backend.fingerprint(grid.scenarios[0])
                != backend.fingerprint(default_grid.scenarios[0]))

    def test_fingerprint_covers_machine_and_scenario(self, p3_machine):
        backend = sim_backend(p3_machine)
        scenario = simulation_grid([(2, 2)]).scenarios[0]
        token = backend.fingerprint(scenario)
        assert token == backend.fingerprint(scenario)
        other_machine = get_machine("opteron-gige")
        assert machine_fingerprint(other_machine) != machine_fingerprint(p3_machine)
        assert (sim_backend(other_machine).fingerprint(scenario) != token)
        different = Scenario(label="2x2", variables={"px": 2, "py": 2, "seed": 1})
        assert backend.fingerprint(different) != token


class TestSampledSimulationBackend:
    def test_sampled_measurement_carries_statistics(self, p3_machine):
        backend = sim_backend(p3_machine, max_iterations=1, samples=4)
        outcome = SweepRunner(backend=backend).run(
            simulation_grid([(2, 2)], max_iterations=1))[0]
        result = outcome.result
        assert result.n_samples == 4
        assert len(result.elapsed_samples) == 4
        assert result.elapsed_mean == pytest.approx(
            sum(result.elapsed_samples) / 4)
        assert result.elapsed_std > 0.0
        assert result.elapsed_ci95 > 0.0

    def test_sample_zero_is_the_unsampled_measurement(self, p3_machine):
        """samples=S only adds columns — the headline value never moves."""
        grid = simulation_grid([(2, 2), (1, 2)], max_iterations=1)
        plain = SweepRunner(backend=sim_backend(
            p3_machine, max_iterations=1)).run(grid)
        sampled = SweepRunner(backend=sim_backend(
            p3_machine, max_iterations=1, samples=3)).run(grid)
        for a, b in zip(plain, sampled):
            assert a.result.elapsed_time == b.result.elapsed_time
            assert a.result.elapsed_time == b.result.elapsed_samples[0]
            assert a.result.rank_finish_times == b.result.rank_finish_times

    def test_unsampled_measurement_defaults(self, p3_machine):
        outcome = SweepRunner(backend=sim_backend(
            p3_machine, max_iterations=1)).run(
            simulation_grid([(1, 1)], max_iterations=1))[0]
        result = outcome.result
        assert result.n_samples == 0
        assert result.elapsed_samples == ()
        assert result.elapsed_mean is None
        assert result.elapsed_std is None
        assert result.elapsed_ci95 is None

    def test_fingerprint_stable_for_unsampled_backends(self, p3_machine):
        """samples=0 must not perturb existing disk-cache keys."""
        scenario = simulation_grid([(2, 2)], max_iterations=1).scenarios[0]
        plain = sim_backend(p3_machine, max_iterations=1)
        explicit = sim_backend(p3_machine, max_iterations=1, samples=0)
        sampled = sim_backend(p3_machine, max_iterations=1, samples=4)
        assert plain.fingerprint(scenario) == explicit.fingerprint(scenario)
        assert sampled.fingerprint(scenario) != plain.fingerprint(scenario)
        assert (sim_backend(p3_machine, max_iterations=1, samples=8)
                .fingerprint(scenario) != sampled.fingerprint(scenario))

    def test_invalid_sample_configurations_rejected(self, p3_machine):
        with pytest.raises(ExperimentError, match="samples"):
            sim_backend(p3_machine, samples=-1)
        with pytest.raises(ExperimentError, match="batched trace replay"):
            sim_backend(p3_machine, execution="engine", samples=2)
        with pytest.raises(ExperimentError, match="numeric"):
            sim_backend(p3_machine, numeric=True, samples=2)


class TestPredictionBackendParity:
    def test_named_backend_matches_default(self, sweep3d_model, synthetic_hardware):
        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        from repro.core.workload import SweepWorkload
        scenario = Scenario(label="2x2",
                            variables=SweepWorkload(deck, 2, 2).model_variables())
        default = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware)
        explicit = SweepRunner(backend=PredictionBackend(
            model=sweep3d_model, hardware=synthetic_hardware))
        assert (default.run([scenario])[0].total_time
                == explicit.run([scenario])[0].total_time)

    def test_fingerprint_tracks_model_content(self, sweep3d_model):
        """An equation edit (same object/proc names) must change the key."""
        from repro.core.workload import load_sweep3d_model

        token = model_fingerprint(sweep3d_model)
        assert token == model_fingerprint(load_sweep3d_model())
        edited = load_sweep3d_model()
        some_object = next(iter(edited.objects.values()))
        first_var = next(iter(some_object.variables), None)
        if first_var is not None:
            del some_object.variables[first_var]
        else:                        # fall back: drop a cflow instead
            some_object.cflows.pop(next(iter(some_object.cflows)))
        assert model_fingerprint(edited) != token

    def test_fingerprint_tracks_hardware(self, sweep3d_model, synthetic_hardware):
        backend = PredictionBackend(model=sweep3d_model,
                                    hardware=synthetic_hardware)
        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        from repro.core.workload import SweepWorkload
        scenario = Scenario(label="2x2",
                            variables=SweepWorkload(deck, 2, 2).model_variables())
        token = backend.fingerprint(scenario)
        faster = PredictionBackend(model=sweep3d_model,
                                   hardware=synthetic_hardware.scaled_flop_rate(2.0))
        assert faster.fingerprint(scenario) != token


class TestSimulationGrid:
    def test_grid_declaration(self):
        grid = simulation_grid([(1, 1), (2, 4)], max_iterations=3, seed=9)
        assert [s.label for s in grid] == ["1x1", "2x4"]
        assert grid.scenarios[1].variables == {
            "px": 2, "py": 4, "max_iterations": 3, "seed": 9}
        assert grid.scenarios[1].tags["pes"] == 8
