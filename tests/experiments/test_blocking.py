"""Tests for the blocking-factor (mk/mmi) study."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.blocking import (
    BlockingStudyResult,
    DEFAULT_MK_VALUES,
    DEFAULT_MMI_VALUES,
    run_blocking_study,
)
from repro.machines.presets import get_machine


@pytest.fixture(scope="module")
def study():
    """The speculative-problem blocking sweep on a 16x16 slice of the
    hypothetical machine (prediction-only, so cheap to run)."""
    return run_blocking_study(machine=get_machine("hypothetical"), px=16, py=16,
                              cells_per_processor=(5, 5, 100),
                              mk_values=(1, 5, 10, 50, 100), mmi_values=(1, 3, 6),
                              max_iterations=12)


class TestBlockingStudy:
    def test_all_combinations_explored(self, study):
        assert len(study.points) == 5 * 3
        assert {p.mk for p in study.points} == {1, 5, 10, 50, 100}
        assert {p.mmi for p in study.points} == {1, 3, 6}

    def test_block_counts_consistent(self, study):
        point = study.point(10, 3)
        assert point.blocks_per_iteration == 8 * 10 * 2
        point = study.point(100, 6)
        assert point.blocks_per_iteration == 8 * 1 * 1

    def test_extreme_blockings_are_slower(self, study):
        """Both extremes lose: tiny blocks pay latency, huge blocks pay fill."""
        best = study.best()
        finest = study.point(1, 1)
        coarsest = study.point(100, 6)
        assert finest.predicted_time > best.predicted_time * 1.05
        assert coarsest.predicted_time > best.predicted_time * 1.5

    def test_paper_choice_is_reasonable(self, study):
        """mk=10, mmi=3 lands within 50% of the best explored combination."""
        assert 0.0 <= study.paper_choice_penalty() < 0.50

    def test_message_count_tracks_block_count(self, study):
        fine = study.point(1, 1)
        coarse = study.point(100, 6)
        assert fine.messages_per_processor > coarse.messages_per_processor

    def test_validation_problem_prefers_fine_blocking(self, p3_machine):
        """For 50^3 cells/processor the compute per block dwarfs the message
        cost, so finer blocking monotonically reduces the pipeline fill."""
        result = run_blocking_study(machine=p3_machine, px=4, py=4,
                                    cells_per_processor=(50, 50, 50),
                                    mk_values=(1, 10, 50), mmi_values=(3,),
                                    max_iterations=12)
        times = {p.mk: p.predicted_time for p in result.points}
        assert times[1] < times[10] < times[50]

    def test_mk_out_of_range_skipped(self, p3_machine):
        result = run_blocking_study(machine=p3_machine, px=2, py=2,
                                    cells_per_processor=(10, 10, 10),
                                    mk_values=(5, 10, 100), mmi_values=(3,),
                                    max_iterations=2)
        assert {p.mk for p in result.points} == {5, 10}

    def test_no_valid_combinations_rejected(self, p3_machine):
        with pytest.raises(ExperimentError):
            run_blocking_study(machine=p3_machine, px=2, py=2,
                               cells_per_processor=(10, 10, 10),
                               mk_values=(100,), mmi_values=(3,))

    def test_point_lookup_error(self, study):
        with pytest.raises(ExperimentError):
            study.point(7, 7)

    def test_empty_best_rejected(self):
        with pytest.raises(ExperimentError):
            BlockingStudyResult("m", 2, 2, (10, 10, 10)).best()

    def test_describe(self, study):
        text = study.describe()
        assert "mk" in text and "best:" in text

    def test_default_value_lists(self):
        assert 10 in DEFAULT_MK_VALUES
        assert 3 in DEFAULT_MMI_VALUES
