"""End-to-end wiring of periodic capture, the trace cache and phase timings.

Covers the layers above :mod:`repro.simmpi.capture`: the simulation
backend/executor stamping per-phase host seconds onto measurements, the
sweep runner auto-attaching a trace cache beneath its sweep cache (and
serving captures from it across "processes"), study results carrying the
aggregated phases into ``manifest.json``, the remote-store trace sync
and the CLI cache commands.
"""

import json

from repro.cli import main
from repro.experiments.backends import SimMeasurement, SimulationBackend
from repro.experiments.remotestore import (
    pull_trace_entries,
    push_trace_entries,
    store_from_url,
)
from repro.experiments.sweep import SweepRunner
from repro.machines.presets import get_machine
from repro.simmpi.tracecache import TraceDiskCache


def simulation_points(runner, arrays=((1, 1), (2, 2))):
    from repro.experiments.backends import simulation_grid

    return runner.run(simulation_grid(arrays))


def make_backend(**kwargs):
    kwargs.setdefault("machine", get_machine("steady"))
    kwargs.setdefault("deck", "validation")
    kwargs.setdefault("max_iterations", 20)
    kwargs.setdefault("with_noise", False)
    return SimulationBackend(**kwargs)


class TestMeasurementPhases:
    def test_measurement_carries_phase_seconds(self):
        runner = SweepRunner(backend=make_backend())
        outcomes = simulation_points(runner)
        for outcome in outcomes:
            result = outcome.result
            assert result.execution_tier in ("steady", "replay")
            assert result.capture_s > 0.0
            assert set(result.phase_seconds) <= {"capture", "replay",
                                                 "steady", "engine"}
        assert runner.phase_seconds.get("capture", 0.0) > 0.0

    def test_phase_fields_default_for_old_pickles(self):
        measurement = SimMeasurement(label="x", machine_name="m", px=1, py=1,
                                     elapsed_time=1.0, seed_offset=0)
        assert measurement.capture_s == 0.0
        assert measurement.phase_seconds == {}


class TestTraceCacheWiring:
    def test_sweep_cache_auto_attaches_trace_cache(self, tmp_path):
        runner = SweepRunner(backend=make_backend(), cache=str(tmp_path))
        cache = runner.backend.trace_cache
        assert isinstance(cache, TraceDiskCache)
        assert cache.path == tmp_path / "traces"
        simulation_points(runner)
        assert len(cache) > 0

    def test_recapture_served_from_cache_across_processes(self, tmp_path):
        cold = SweepRunner(backend=make_backend(), cache=str(tmp_path))
        cold_outcomes = simulation_points(cold)
        # A fresh runner over fresh objects but the same directory —
        # i.e. a new process — must not re-capture, and the results must
        # be identical.  An empty sweep cache isolates the trace tier.
        cold.cache.clear()
        warm = SweepRunner(backend=make_backend(), cache=str(tmp_path))
        warm_outcomes = simulation_points(warm)
        snapshot = warm.backend.trace_cache.stats_snapshot()
        assert snapshot.hits > 0
        assert snapshot.stores == 0
        for got, want in zip(warm_outcomes, cold_outcomes):
            assert got.result.elapsed_time == want.result.elapsed_time

    def test_backend_accepts_path_like_trace_cache(self, tmp_path):
        backend = make_backend(trace_cache=str(tmp_path / "tc"))
        assert isinstance(backend.trace_cache, TraceDiskCache)


class TestRemoteTraceSync:
    def test_push_and_pull_trace_entries(self, tmp_path):
        source = SweepRunner(backend=make_backend(),
                             cache=str(tmp_path / "a"))
        simulation_points(source)
        store = store_from_url(f"file://{tmp_path}/bucket")
        pushed = push_trace_entries(source.backend.trace_cache, store)
        assert pushed == len(source.backend.trace_cache)
        # Second push is a no-op; pull warms an empty cache byte-for-byte.
        assert push_trace_entries(source.backend.trace_cache, store) == 0
        target = TraceDiskCache(tmp_path / "b")
        assert pull_trace_entries(store, target) == pushed
        names = {entry.name for entry in target.entries()}
        assert names == {entry.name for entry
                         in source.backend.trace_cache.entries()}
        for entry in target.entries():
            assert entry.read_bytes() \
                == (source.backend.trace_cache.path / entry.name).read_bytes()


class TestStudyPhases:
    def test_study_result_and_manifest_carry_phases(self, tmp_path):
        from repro.experiments.artifacts import write_study_artifacts
        from repro.experiments.study import build_spec, run_study

        spec = build_spec("steady-scaling",
                          cache_dir=str(tmp_path / "cache")).smoke()
        result = run_study(spec)
        assert result.phases.get("capture", 0.0) > 0.0
        assert "phases" in result.to_dict()
        manifest_path = write_study_artifacts([result], tmp_path / "artifacts")
        manifest = json.loads(manifest_path.read_text())
        entry = manifest["studies"][0]
        assert entry["phases"] == result.phases


class TestCacheCli:
    def test_cache_stats_include_trace_tier(self, tmp_path, capsys):
        runner = SweepRunner(backend=make_backend(), cache=str(tmp_path))
        simulation_points(runner, arrays=((1, 1),))
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "trace entries: 1" in out
        assert "trace total bytes:" in out

    def test_cache_prune_covers_trace_tier(self, tmp_path, capsys):
        runner = SweepRunner(backend=make_backend(), cache=str(tmp_path))
        simulation_points(runner)
        assert main(["cache", "prune", "--cache-dir", str(tmp_path),
                     "--max-entries", "0"]) == 0
        out = capsys.readouterr().out
        assert "traces:" in out
        assert len(TraceDiskCache(tmp_path / "traces")) == 0
