"""Tests for the disk-backed sweep cache."""

import multiprocessing
import pickle

import pytest

from repro.experiments.backends import SimulationBackend, simulation_grid
from repro.experiments.diskcache import (
    DiskCacheStats,
    SweepDiskCache,
    fingerprint_digest,
)
from repro.experiments.sweep import SweepRunner
from repro.machines.presets import get_machine


@pytest.fixture(scope="module")
def p3_machine():
    return get_machine("pentium3-myrinet")


def sim_backend(machine, **kwargs):
    kwargs.setdefault("max_iterations", 2)
    return SimulationBackend(machine, **kwargs)


class TestCacheBasics:
    def test_hit_miss_store_accounting(self, tmp_path):
        cache = SweepDiskCache(tmp_path / "cache")
        key = ("backend", ("fingerprint",), 1)
        assert cache.get(key) is None
        cache.put(key, {"elapsed": 1.5})
        assert cache.get(key) == {"elapsed": 1.5}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert 0.0 < cache.stats.hit_rate < 1.0
        assert "hit" in cache.stats.describe()
        assert len(cache) == 1

    def test_distinct_keys_distinct_entries(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        assert cache.get(("a",)) == 1
        assert cache.get(("b",)) == 2
        assert len(cache) == 2
        assert fingerprint_digest(("a",)) != fingerprint_digest(("b",))

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        key = ("will", "be", "corrupted")
        cache.put(key, 42)
        entry = cache._entry_path(key)
        entry.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        # ... and can be healed by a subsequent store.
        cache.put(key, 43)
        assert cache.get(key) == 43

    def test_clear(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        cache.put(("x",), 1)
        cache.put(("y",), 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.get(("x",)) is None

    def test_stats_merge(self):
        merged = DiskCacheStats(hits=1, misses=2, stores=3).merge(
            DiskCacheStats(hits=10, misses=20, stores=30))
        assert (merged.hits, merged.misses, merged.stores) == (11, 22, 33)


class TestSweepIntegration:
    def test_warm_second_run_hits(self, tmp_path, p3_machine):
        grid = simulation_grid([(1, 1), (2, 2), (1, 3)])
        cold = SweepRunner(backend=sim_backend(p3_machine), cache=tmp_path)
        cold_outcomes = cold.run(grid)
        assert cold.disk_stats.misses == len(grid)
        assert cold.disk_stats.stores == len(grid)
        assert cold.disk_stats.hits == 0

        warm = SweepRunner(backend=sim_backend(p3_machine), cache=tmp_path)
        warm_outcomes = warm.run(grid)
        assert warm.disk_stats.hits == len(grid)
        assert warm.disk_stats.misses == 0
        assert warm.stats.predictions == 0          # nothing re-simulated
        assert ([o.total_time for o in warm_outcomes]
                == [o.total_time for o in cold_outcomes])

    def test_workers_warm_from_shared_store(self, tmp_path, p3_machine):
        grid = simulation_grid([(1, 1), (2, 2), (1, 3), (3, 1)])
        SweepRunner(backend=sim_backend(p3_machine), cache=tmp_path).run(grid)
        fanned = SweepRunner(backend=sim_backend(p3_machine), cache=tmp_path,
                             workers=2)
        fanned.run(grid)
        assert fanned.disk_stats.hits == len(grid)
        assert fanned.stats.predictions == 0

    def test_invalidation_on_machine_change(self, tmp_path, p3_machine):
        """A different hardware fingerprint must miss, not serve stale times."""
        grid = simulation_grid([(2, 2)])
        SweepRunner(backend=sim_backend(p3_machine), cache=tmp_path).run(grid)

        other = get_machine("opteron-gige")
        runner = SweepRunner(backend=sim_backend(other), cache=tmp_path)
        runner.run(grid)
        assert runner.disk_stats.hits == 0
        assert runner.disk_stats.misses == 1
        assert runner.stats.predictions == 1        # really re-simulated

    def test_prediction_backend_invalidation_on_hardware_change(
            self, tmp_path, sweep3d_model, synthetic_hardware):
        from repro.core.workload import SweepWorkload
        from repro.experiments.sweep import Scenario
        from repro.sweep3d.input import standard_deck

        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        scenario = Scenario(label="2x2",
                            variables=SweepWorkload(deck, 2, 2).model_variables())
        first = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware,
                            cache=tmp_path)
        first.run([scenario])
        assert first.disk_stats.stores == 1

        warm = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware,
                           cache=tmp_path)
        warm.run([scenario])
        assert warm.disk_stats.hits == 1

        changed = SweepRunner(model=sweep3d_model,
                              hardware=synthetic_hardware.scaled_flop_rate(2.0),
                              cache=tmp_path)
        outcomes = changed.run([scenario])
        assert changed.disk_stats.hits == 0
        assert outcomes[0].total_time != warm.run([scenario])[0].total_time


def _hammer_cache(args):
    """Worker: interleaved writes/reads of shared and private keys."""
    path, worker, rounds = args
    cache = SweepDiskCache(path)
    clean = True
    for round_no in range(rounds):
        shared_key = ("shared", round_no)
        payload = {"round": round_no, "blob": list(range(200))}
        cache.put(shared_key, payload)          # every worker writes the same key
        cache.put(("private", worker, round_no), payload)
        seen = cache.get(shared_key)
        # Atomic replace: a reader sees a complete entry or a miss, never a
        # torn/partial file (which would raise or return garbage).
        if seen is not None and seen != payload:
            clean = False
    return clean


class TestConcurrentWriters:
    def test_multiprocess_writers_never_tear_entries(self, tmp_path):
        rounds = 20
        workers = 4
        with multiprocessing.Pool(workers) as pool:
            results = pool.map(_hammer_cache,
                               [(str(tmp_path), w, rounds) for w in range(workers)])
        assert all(results)
        cache = SweepDiskCache(tmp_path)
        # Every entry on disk is complete and unpicklable garbage-free.
        for entry in sorted(cache.path.glob("*.pkl")):
            with open(entry, "rb") as handle:
                version, key, value = pickle.load(handle)
            assert value["blob"] == list(range(200))
        # No leftover temp files from interrupted writes.
        assert list(cache.path.glob("*.tmp")) == []
        assert len(cache) == rounds * (workers + 1)


class TestThreadSafeStats:
    def test_threaded_readers_count_exactly(self, tmp_path):
        """Regression: unguarded ``stats.hits += 1`` dropped counts."""
        import threading

        cache = SweepDiskCache(tmp_path)
        cache.put(("hot",), {"elapsed": 1.0})
        cache.reset_stats()
        threads, rounds = 8, 200

        def reader():
            for _ in range(rounds):
                assert cache.get(("hot",)) is not None
                cache.get(("cold",))

        pool = [threading.Thread(target=reader) for _ in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = cache.stats_snapshot()
        assert snapshot.hits == threads * rounds
        assert snapshot.misses == threads * rounds
        assert snapshot.stores == 0

    def test_snapshot_is_a_copy(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        before = cache.stats_snapshot()
        cache.put(("k",), 1)
        cache.get(("k",))
        assert before.hits == 0 and before.stores == 0
        after = cache.stats_snapshot()
        assert (after.hits, after.misses, after.stores) == (1, 0, 1)

    def test_pickle_round_trip_recreates_the_lock(self, tmp_path):
        cache = SweepDiskCache(tmp_path)
        cache.put(("k",), 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get(("k",)) == 1
        assert clone.stats_snapshot().hits == 1
        # The rebuilt lock is functional, not shared with the original.
        assert clone._stats_lock is not cache._stats_lock


class TestPrune:
    def _seed(self, tmp_path, count, mtime_base=None):
        import os
        cache = SweepDiskCache(tmp_path)
        for index in range(count):
            cache.put(("entry", index), {"payload": index})
        if mtime_base is not None:
            # Deterministic store times, oldest first.
            for offset, entry in enumerate(cache.entries()):
                os.utime(entry, (mtime_base + offset, mtime_base + offset))
        return cache

    def test_prune_max_entries_keeps_newest(self, tmp_path):
        cache = self._seed(tmp_path, 5, mtime_base=1000.0)
        survivors_expected = cache.entries()[2:]
        result = cache.prune(max_entries=3)
        assert result.removed == 2
        assert result.kept == 3
        assert result.reclaimed_bytes > 0
        assert cache.entries() == survivors_expected
        assert "pruned 2 entries" in result.describe()

    def test_prune_max_age(self, tmp_path):
        cache = self._seed(tmp_path, 4, mtime_base=1000.0)
        # Entries at t=1000..1003; at t=1003.5 a 2 s horizon (cutoff 1001.5)
        # evicts the two oldest.
        result = cache.prune(max_age_s=2.0, now=1003.5)
        assert result.removed == 2
        assert len(cache) == 2

    def test_prune_combined_limits(self, tmp_path):
        cache = self._seed(tmp_path, 6, mtime_base=1000.0)
        result = cache.prune(max_entries=2, max_age_s=10.0, now=1003.5)
        # The age cutoff (993.5) evicts nothing; the count limit keeps the
        # 2 newest of the 6 entries.
        assert result.removed == 4
        assert len(cache) == 2

    def test_prune_noop_and_validation(self, tmp_path):
        cache = self._seed(tmp_path, 2)
        result = cache.prune(max_entries=10, max_age_s=3600.0)
        assert result.removed == 0 and result.kept == 2
        import pytest as _pytest
        from repro.errors import ExperimentError
        with _pytest.raises(ExperimentError):
            cache.prune(max_entries=-1)
        with _pytest.raises(ExperimentError):
            cache.prune(max_age_s=-0.1)

    def test_pruned_entries_are_misses_survivors_hit(self, tmp_path):
        cache = self._seed(tmp_path, 3, mtime_base=1000.0)
        cache.prune(max_entries=1)
        cache.reset_stats()
        # Exactly one entry survives; pruned keys read as clean misses.
        values = [cache.get(("entry", index)) for index in range(3)]
        assert values.count(None) == 2
        assert cache.stats.hits == 1 and cache.stats.misses == 2

    def test_total_bytes(self, tmp_path):
        cache = self._seed(tmp_path, 3)
        total = cache.total_bytes()
        assert total == sum(entry.stat().st_size for entry in cache.entries())
        assert total > 0
