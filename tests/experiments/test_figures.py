"""Tests for the speculative scaling figures (Figures 8 and 9)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import (
    FIGURE8_STUDY,
    FIGURE9_STUDY,
    figure8,
    figure9,
    run_speculative_figure,
)

#: Short processor axis used to keep the test cheap; the benchmarks run the
#: full axis up to 8000 processors.
SHORT_AXIS = [1, 4, 16, 64, 256]


@pytest.fixture(scope="module")
def short_figure8():
    return figure8(processor_counts=SHORT_AXIS)


class TestFigure8:
    def test_three_series(self, short_figure8):
        assert len(short_figure8.series) == 3
        assert [s.rate_factor for s in short_figure8.series] == [1.0, 1.25, 1.5]
        assert short_figure8.series[0].flop_rate_mflops == pytest.approx(340.0)

    def test_monotone_weak_scaling(self, short_figure8):
        for series in short_figure8.series:
            assert series.is_monotone_nondecreasing()
            assert series.processor_counts == SHORT_AXIS

    def test_faster_processors_are_faster_everywhere(self, short_figure8):
        actual = short_figure8.series_for(1.0).times
        plus25 = short_figure8.series_for(1.25).times
        plus50 = short_figure8.series_for(1.5).times
        for base, mid, fast in zip(actual, plus25, plus50):
            assert base > mid > fast

    def test_upgrade_speedup_is_sublinear(self, short_figure8):
        """A +50% flop rate gives less than 1.5x overall speedup (communication)."""
        speedup = short_figure8.speedup_from_upgrade(1.5)
        assert 1.0 < speedup < 1.5

    def test_single_processor_time_matches_compute_bound(self, short_figure8):
        # At one processor the 20M-cell problem runs 2500 cells x 48 angles
        # x 36 flops x 12 iterations plus the serial phases at 340 MFLOPS.
        sweep_flops = 2500 * 48 * 36 * 12
        expected = sweep_flops / 340e6
        actual = short_figure8.series_for(1.0).times[0]
        assert actual == pytest.approx(expected, rel=0.10)

    def test_unknown_rate_factor(self, short_figure8):
        with pytest.raises(ExperimentError):
            short_figure8.series_for(2.0)


class TestFigure9:
    def test_figure9_larger_than_figure8(self):
        fig8 = figure8(processor_counts=[16], rate_factors=[1.0])
        fig9 = figure9(processor_counts=[16], rate_factors=[1.0])
        # The 1-billion-cell problem has 50x more cells per processor.
        ratio = fig9.actual.times[0] / fig8.actual.times[0]
        assert 30 < ratio < 70

    def test_study_parameters_propagate(self):
        result = figure9(processor_counts=[4], rate_factors=[1.0])
        assert result.study is FIGURE9_STUDY
        assert result.machine_name == "hypothetical-opteron-myrinet"


class TestRunSpeculativeFigure:
    def test_custom_axis_and_factors(self):
        result = run_speculative_figure(FIGURE8_STUDY, processor_counts=[1, 8],
                                        rate_factors=[1.0])
        assert len(result.series) == 1
        assert result.series[0].as_rows() == list(zip([1, 8], result.series[0].times))

    def test_empty_axis_rejected(self):
        with pytest.raises(ExperimentError):
            run_speculative_figure(FIGURE8_STUDY, processor_counts=[])
