"""Tests for the elastic shard fleet: leases, chaos, bit-identity."""

import json
import random
import threading
import time
from pathlib import Path

import pytest

from repro.errors import FleetError
from repro.experiments.fleet import (
    FleetCoordinator,
    FleetEventLog,
    FleetWorker,
    fleet_status,
    run_local_fleet,
)
from repro.experiments.remotestore import MemoryStore
from repro.experiments.sharding import plan_shards, plan_unit_shards
from repro.experiments.study import (
    StudyContext,
    StudyRunner,
    build_spec,
)

SPECS = ("table2", "figure8")


@pytest.fixture(scope="module")
def shared_context():
    with StudyContext() as ctx:
        yield ctx


@pytest.fixture(scope="module")
def runner(shared_context):
    return StudyRunner(context=shared_context)


@pytest.fixture(scope="module")
def references(runner):
    """Unsharded smoke runs of the fleet test specs, keyed by study."""
    return {name: runner.run(build_spec(name).smoke()) for name in SPECS}


@pytest.fixture(scope="module")
def static_merge(runner):
    """The static 4-way plan's merged rows: the other bit-identity anchor."""
    from repro.experiments.sharding import group_by_parent, merge_study_results
    shard_specs = []
    for name in SPECS:
        plan = plan_shards(build_spec(name).smoke(), 4)
        shard_specs.extend(shard.spec for shard in plan.shards)
    results = [runner.run(spec) for spec in shard_specs]
    families, plain = group_by_parent(results)
    assert not plain
    merged = {}
    for family in families.values():
        result = merge_study_results(family)
        merged[result.spec.study] = result
    return merged


def assert_bit_identical(outcome, references):
    """Fleet rows/columns equal the reference run's, study by study."""
    by_study = {result.spec.study: result for result in outcome.results}
    assert set(by_study) == set(references)
    for study, reference in references.items():
        result = by_study[study]
        assert result.spec == reference.spec
        assert result.columns == reference.columns
        assert result.rows == reference.rows


class TestEnqueue:
    def test_refuses_duplicate_specs(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore())
        with pytest.raises(FleetError, match="twice"):
            coordinator.enqueue([build_spec("table2"), "table2"])

    def test_refuses_reused_directory(self, tmp_path):
        FleetCoordinator(tmp_path / "q",
                         store=MemoryStore()).enqueue(["table2"], smoke=True)
        with pytest.raises(FleetError, match="already holds a fleet"):
            FleetCoordinator(tmp_path / "q",
                             store=MemoryStore()).enqueue(["table2"])

    def test_refuses_empty(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore())
        with pytest.raises(FleetError, match="nothing to enqueue"):
            coordinator.enqueue([])

    def test_unit_count_matches_unit_plan(self, tmp_path):
        expected = sum(plan_unit_shards(build_spec(name).smoke()).shard_count
                       for name in SPECS)
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore())
        specs = [build_spec(name).smoke() for name in SPECS]
        assert coordinator.enqueue(specs) == expected

    def test_descriptor_written_after_units(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore())
        units = coordinator.enqueue([build_spec("table2").smoke()])
        descriptor = json.loads((tmp_path / "q" / "fleet.json").read_text())
        assert descriptor["unit_count"] == units
        for index in range(units):
            assert (tmp_path / "q" / "units" / f"unit-{index:04d}.json").exists()


class TestLocalFleet:
    def test_single_worker_bit_identity(self, references, shared_context):
        outcome = run_local_fleet([build_spec(n).smoke() for n in SPECS],
                                  n_workers=1, context=shared_context)
        assert outcome.status == "done"
        assert_bit_identical(outcome, references)

    def test_multi_worker_bit_identity(self, references):
        outcome = run_local_fleet([build_spec(n).smoke() for n in SPECS],
                                  n_workers=3)
        assert outcome.status == "done"
        assert outcome.zombies == 0
        assert_bit_identical(outcome, references)

    def test_matches_static_four_way_merge(self, references, static_merge):
        """Fleet == static 4-way plan == unsharded, the hard invariant."""
        outcome = run_local_fleet([build_spec(n).smoke() for n in SPECS],
                                  n_workers=2)
        assert_bit_identical(outcome, references)
        assert_bit_identical(outcome, static_merge)

    def test_smoke_flag_matches_presmoked_specs(self, references):
        outcome = run_local_fleet(list(SPECS), n_workers=2, smoke=True)
        assert_bit_identical(outcome, references)

    def test_writes_standard_artifacts(self, tmp_path, references):
        from repro.experiments.artifacts import load_study_results
        out = tmp_path / "merged"
        outcome = run_local_fleet([build_spec("table2").smoke()],
                                  n_workers=2, out_dir=out)
        assert outcome.out_dir == out
        loaded = load_study_results(out)
        assert len(loaded) == 1
        assert loaded[0].rows == references["table2"].rows

    def test_timeout_fails_without_workers(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore(),
                                       poll_s=0.01)
        coordinator.enqueue([build_spec("table2").smoke()])
        outcome = coordinator.serve(timeout_s=0.2)
        assert outcome.status == "failed"
        assert "timed out" in outcome.reason
        done = json.loads((tmp_path / "q" / "done.json").read_text())
        assert done["status"] == "failed"

    def test_worker_cache_sync_through_store(self, tmp_path, references):
        """Worker B warm-starts from worker A's pushed cache entries."""
        store = MemoryStore()
        run_local_fleet([build_spec("table2").smoke()], n_workers=1,
                        store=store, fleet_dir=tmp_path / "q1",
                        cache_dir=str(tmp_path / "cache-a"))
        assert store.list_keys("cache")
        outcome = run_local_fleet([build_spec("table2").smoke()],
                                  n_workers=1, store=store,
                                  fleet_dir=tmp_path / "q2",
                                  cache_dir=str(tmp_path / "cache-b"))
        assert_bit_identical(outcome, {"table2": references["table2"]})
        events = FleetEventLog(tmp_path / "q2" / "events.jsonl").events()
        pulled = [e for e in events if e["event"] == "cache-pulled"]
        assert pulled and pulled[0]["entries"] > 0


class TestChaos:
    """The issue's hard invariant: placement and death never change rows."""

    def test_random_worker_death_keeps_bit_identity(self, references):
        """Property-style: random kill schedules, every run bit-identical.

        Each round starts three workers; each has an independent chance
        of dying (heartbeats stop, leases stranded) before executing any
        given unit.  At least one immortal worker guarantees progress.
        Short TTL makes the coordinator reassign within the round.
        """
        rng = random.Random(0xF1EE7)
        specs = [build_spec(n).smoke() for n in SPECS]
        for round_number in range(3):
            doom = [rng.random() < 0.5, rng.random() < 0.5, False]

            def factory(number, fleet_dir, store, _doom=doom):
                hook = None
                if _doom[number]:
                    def hook(unit, _fired=[]):
                        if not _fired:
                            _fired.append(unit)
                            return True
                        return False
                return FleetWorker(fleet_dir, store=store,
                                   worker_id=f"chaos-{number}",
                                   poll_s=0.01, prefetch=2,
                                   failure_hook=hook)

            outcome = run_local_fleet(specs, n_workers=3, poll_s=0.01,
                                      lease_ttl_s=0.3, timeout_s=120.0,
                                      worker_factory=factory)
            assert outcome.status == "done", f"round {round_number}"
            if any(doom):
                assert outcome.reassignments >= 1
            assert_bit_identical(outcome, references)

    def test_worker_dies_holding_last_unit(self, references):
        """Edge case: the dying worker holds the only remaining unit."""
        spec = build_spec("table2", max_pes=4, max_iterations=1)
        assert plan_unit_shards(spec).shard_count == 1  # single-unit grid

        def factory(number, fleet_dir, store):
            hook = None
            if number == 0:
                def hook(unit, _fired=[]):
                    if not _fired:
                        _fired.append(unit)
                        return True
                    return False
            return FleetWorker(fleet_dir, store=store,
                               worker_id=f"last-{number}", poll_s=0.01,
                               failure_hook=hook)

        outcome = run_local_fleet([spec], n_workers=2, poll_s=0.01,
                                  lease_ttl_s=0.3, timeout_s=120.0,
                                  worker_factory=factory)
        assert outcome.status == "done"
        assert outcome.reassignments >= 1
        result = outcome.results[0]
        reference = StudyRunner().run(spec)
        assert result.rows == reference.rows


class TestLeaseProtocol:
    """Lease-expiry edge cases at the file level, with a frozen clock."""

    def _fleet(self, tmp_path, ttl=10.0):
        clock = FrozenClock()
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore(),
                                       lease_ttl_s=ttl, clock=clock)
        coordinator.enqueue([build_spec("table2", max_pes=4,
                                        max_iterations=1)])
        return coordinator, clock

    def test_two_workers_race_one_expired_lease(self, tmp_path):
        """Exactly one racer wins the O_EXCL create of the new lease."""
        coordinator, clock = self._fleet(tmp_path)
        store = coordinator.store
        workers = [FleetWorker(tmp_path / "q", store=store,
                               worker_id=f"racer-{i}", clock=clock)
                   for i in range(2)]
        for worker in workers:
            worker.lease_ttl_s = coordinator.lease_ttl_s
        # A third party held the lease and died: plant the stale lease.
        dead = FleetWorker(tmp_path / "q", store=store, worker_id="dead",
                           clock=clock)
        dead.lease_ttl_s = coordinator.lease_ttl_s
        record = json.loads(
            (tmp_path / "q" / "units" / "unit-0000.json").read_text())
        assert dead._try_claim(0, 0, record) is not None
        clock.advance(11.0)  # beyond TTL
        coordinator.poll_once()  # expires g0, bumps to g1
        fresh = json.loads(
            (tmp_path / "q" / "units" / "unit-0000.json").read_text())
        assert fresh["generation"] == 1
        wins = []
        barrier = threading.Barrier(2)

        def race(worker):
            barrier.wait()
            wins.append(worker._try_claim(0, 1, fresh))

        threads = [threading.Thread(target=race, args=(w,)) for w in workers]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert sum(claim is not None for claim in wins) == 1

    def test_zombie_heartbeat_after_reassignment_is_ignored(self, tmp_path):
        """A heartbeat landing after reassignment must not resurrect g0.

        The zombie's refresh can recreate the old lease file; the
        coordinator must drop it by generation, and the zombie's late
        result must be discarded (deterministic, so provably identical —
        but never double-merged).
        """
        coordinator, clock = self._fleet(tmp_path)
        store = coordinator.store
        zombie = FleetWorker(tmp_path / "q", store=store, worker_id="zombie",
                             clock=clock)
        zombie.lease_ttl_s = coordinator.lease_ttl_s
        record = json.loads(
            (tmp_path / "q" / "units" / "unit-0000.json").read_text())
        claimed = zombie._try_claim(0, 0, record)
        assert claimed is not None
        clock.advance(11.0)
        coordinator.poll_once()  # lease expired; generation bumped to 1
        # The zombie's heartbeat raced the deletion and lost: its atomic
        # rewrite recreated the g0 lease file with a fresh deadline.
        lease_path = tmp_path / "q" / "leases" / "unit-0000.g0.json"
        lease_path.write_text(json.dumps(
            {"unit": 0, "generation": 0, "worker": "zombie",
             "acquired": clock(), "deadline": clock() + 10.0}))
        coordinator.poll_once()
        assert not lease_path.exists()  # dropped by generation, not TTL
        # A later heartbeat sees the file gone and prunes its lease table
        # instead of resurrecting it.
        zombie._refresh_leases()
        assert not lease_path.exists()
        # The zombie then finishes the unit and publishes at g0.
        with StudyContext() as ctx:
            runner = StudyRunner(context=ctx)
            result = runner.run(claimed.spec)
        zombie._publish(claimed, result, elapsed=0.0)
        coordinator.poll_once()
        assert coordinator._zombies == 1
        unit = json.loads(
            (tmp_path / "q" / "units" / "unit-0000.json").read_text())
        assert unit["state"] == "pending"  # g1 still open for a live worker
        events = [e["event"] for e in coordinator.log.events()]
        assert "zombie-result-discarded" in events

    def test_expiry_emits_events_and_returns_unit(self, tmp_path):
        coordinator, clock = self._fleet(tmp_path)
        worker = FleetWorker(tmp_path / "q", store=coordinator.store,
                             worker_id="mortal", clock=clock)
        worker.lease_ttl_s = coordinator.lease_ttl_s
        record = json.loads(
            (tmp_path / "q" / "units" / "unit-0000.json").read_text())
        assert worker._try_claim(0, 0, record) is not None
        coordinator.poll_once()
        assert coordinator._reassignments == 0  # within TTL: untouched
        clock.advance(10.5)
        coordinator.poll_once()
        events = [e["event"] for e in coordinator.log.events()]
        assert events.count("lease-expired") == 1
        assert events.count("reassigned") == 1


class TestStatus:
    def test_status_snapshot(self, tmp_path):
        coordinator = FleetCoordinator(tmp_path / "q", store=MemoryStore())
        units = coordinator.enqueue([build_spec("table2").smoke()])
        status = fleet_status(tmp_path / "q")
        assert status["unit_count"] == units
        assert status["open"] == units
        assert status["done"] == 0
        assert status["status"] == "running"

    def test_status_without_fleet_raises(self, tmp_path):
        with pytest.raises(FleetError, match="no fleet"):
            fleet_status(tmp_path / "empty")


class TestEventLog:
    def test_append_and_read_back(self, tmp_path):
        log = FleetEventLog(tmp_path / "events.jsonl")
        log.append("alpha", unit=1)
        log.append("beta", worker="w0")
        events = log.events()
        assert [e["event"] for e in events] == ["alpha", "beta"]
        assert events[0]["unit"] == 1

    def test_concurrent_appends_never_interleave(self, tmp_path):
        log = FleetEventLog(tmp_path / "events.jsonl")

        def spam(tag):
            for i in range(50):
                log.append("tick", tag=tag, i=i)

        threads = [threading.Thread(target=spam, args=(t,)) for t in range(4)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        events = log.events()
        assert len(events) == 200
        assert all(e["event"] == "tick" for e in events)


class FrozenClock:
    """A manually advanced clock for deterministic lease-expiry tests."""

    def __init__(self, start: float = 1_000_000.0):
        self._now = start

    def __call__(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds
