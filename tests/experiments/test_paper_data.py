"""Consistency tests on the transcribed paper data."""

import pytest

from repro.experiments.paper_data import (
    FIGURE8_STUDY,
    FIGURE9_STUDY,
    PAPER_ERROR_STATS,
    PAPER_TABLES,
    TABLE1_ROWS,
    TABLE2_ROWS,
    TABLE3_ROWS,
)


class TestValidationTables:
    def test_row_counts_match_paper(self):
        assert len(TABLE1_ROWS) == 24
        assert len(TABLE2_ROWS) == 9
        assert len(TABLE3_ROWS) == 16

    @pytest.mark.parametrize("rows", [TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS])
    def test_processor_arrays_consistent(self, rows):
        for row in rows:
            assert row.px * row.py == row.pes
            it, jt, kt = (int(p) for p in row.data_size.split("x"))
            # Weak scaling: 50^3 cells per processor in every validation run.
            assert it == 50 * row.px
            assert jt == 50 * row.py
            assert kt == 50
            assert row.cells_per_processor == (50, 50, 50)

    @pytest.mark.parametrize("rows", [TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS])
    def test_published_errors_match_published_times(self, rows):
        for row in rows:
            expected = (row.measured - row.predicted) / row.measured * 100.0
            assert row.error_pct == pytest.approx(expected, abs=0.06)

    @pytest.mark.parametrize("rows", [TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS])
    def test_all_published_errors_below_ten_percent(self, rows):
        assert all(abs(row.error_pct) < 10.0 for row in rows)

    def test_published_average_errors(self):
        """The table captions' average errors match the transcribed rows."""
        for name, rows in (("table1", TABLE1_ROWS), ("table2", TABLE2_ROWS),
                           ("table3", TABLE3_ROWS)):
            average = sum(abs(r.error_pct) for r in rows) / len(rows)
            assert average == pytest.approx(PAPER_ERROR_STATS[name]["average_error"],
                                            abs=0.25)

    def test_weak_scaling_measured_times_mostly_increase(self):
        """The paper notes a linear increase in runtime with pipeline stages.

        Individual rows fluctuate (different Px/Py aspect ratios at similar
        processor counts), so only the overall trend is asserted.
        """
        for rows in (TABLE1_ROWS, TABLE2_ROWS, TABLE3_ROWS):
            measured = [row.measured for row in rows]
            increasing = sum(1 for a, b in zip(measured, measured[1:]) if b >= a)
            assert increasing >= 0.6 * (len(measured) - 1)
            assert measured[-1] > measured[0]

    def test_largest_configurations(self):
        assert max(row.pes for row in TABLE1_ROWS) == 112
        assert max(row.pes for row in TABLE2_ROWS) == 30
        assert max(row.pes for row in TABLE3_ROWS) == 56

    def test_tables_reference_registered_machines(self):
        from repro.machines.presets import MACHINE_PRESETS
        for spec in PAPER_TABLES.values():
            assert spec["machine"] in MACHINE_PRESETS


class TestSpeculativeStudies:
    def test_total_cell_targets(self):
        nx, ny, nz = FIGURE8_STUDY.cells_per_processor
        assert nx * ny * nz * FIGURE8_STUDY.max_processors == pytest.approx(20e6)
        nx, ny, nz = FIGURE9_STUDY.cells_per_processor
        assert nx * ny * nz * FIGURE9_STUDY.max_processors == pytest.approx(1e9)

    def test_paper_parameters(self):
        for study in (FIGURE8_STUDY, FIGURE9_STUDY):
            assert study.mk == 10
            assert study.mmi == 3
            assert study.flop_rate_mflops == 340.0
            assert study.rate_factors == (1.0, 1.25, 1.5)
            assert study.max_processors == 8000

    def test_processor_axis_is_increasing(self):
        counts = FIGURE8_STUDY.processor_counts
        assert list(counts) == sorted(counts)
        assert counts[0] == 1
