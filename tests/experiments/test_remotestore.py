"""Tests for the object-store-style artifact/cache backend."""

import threading

import pytest

from repro.errors import StoreError
from repro.experiments.diskcache import SweepDiskCache
from repro.experiments.remotestore import (
    LocalDirStore,
    MemoryStore,
    memory_store,
    pull_cache_entries,
    push_cache_entries,
    store_from_url,
    validate_key,
)


@pytest.fixture(params=["memory", "localdir"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryStore()
    return LocalDirStore(tmp_path / "store")


class TestKeyValidation:
    def test_accepts_portable_keys(self):
        for key in ("a", "runs/abc/unit-0001", "cache/0f.pkl", "a.b_c-d"):
            assert validate_key(key) == key

    @pytest.mark.parametrize("key", [
        "", "/abs", "a//b", "a/", "../up", "a/../b", ".hidden/x",
        "sp ace", "unié", "a\\b",
    ])
    def test_rejects_unportable_keys(self, key):
        with pytest.raises(StoreError):
            validate_key(key)


class TestStoreRoundTrips:
    def test_bytes_round_trip(self, store):
        store.put_bytes("a/b", b"\x00\xffpayload")
        assert store.get_bytes("a/b") == b"\x00\xffpayload"
        assert store.exists("a/b")
        assert not store.exists("a/c")

    def test_get_missing_raises(self, store):
        with pytest.raises(StoreError, match="no object"):
            store.get_bytes("missing/key")

    def test_overwrite_replaces(self, store):
        store.put_bytes("k", b"one")
        store.put_bytes("k", b"two")
        assert store.get_bytes("k") == b"two"

    def test_json_round_trip(self, store):
        payload = {"b": [1, 2], "a": {"nested": True}}
        store.put_json("doc", payload)
        assert store.get_json("doc") == payload

    def test_list_keys_prefix(self, store):
        for key in ("runs/x/1", "runs/x/2", "runs/y/1", "other"):
            store.put_bytes(key, b".")
        assert store.list_keys("runs/x") == ["runs/x/1", "runs/x/2"]
        assert store.list_keys() == ["other", "runs/x/1", "runs/x/2",
                                     "runs/y/1"]

    def test_delete(self, store):
        store.put_bytes("gone", b".")
        assert store.delete("gone")
        assert not store.delete("gone")
        assert not store.exists("gone")

    def test_dir_round_trip(self, store, tmp_path):
        src = tmp_path / "src"
        (src / "sub").mkdir(parents=True)
        (src / "top.txt").write_text("top")
        (src / "sub" / "leaf.bin").write_bytes(b"\x01\x02")
        assert store.push_dir("tree", src) == 2
        dst = tmp_path / "dst"
        assert store.pull_dir("tree", dst) == 2
        assert (dst / "top.txt").read_text() == "top"
        assert (dst / "sub" / "leaf.bin").read_bytes() == b"\x01\x02"

    def test_pull_empty_prefix_raises(self, store, tmp_path):
        with pytest.raises(StoreError, match="no objects"):
            store.pull_dir("nothing/here", tmp_path / "out")

    def test_concurrent_writers(self, store):
        errors = []

        def hammer(tag):
            try:
                for i in range(30):
                    store.put_bytes(f"c/{tag}/{i}", bytes([i]) * 10)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(4)]
        [t.start() for t in threads]
        [t.join() for t in threads]
        assert not errors
        assert len(store.list_keys("c")) == 120


class TestStoreUrls:
    def test_memory_url_is_process_shared(self):
        one = store_from_url("mem://shared-bucket")
        two = store_from_url("mem://shared-bucket")
        one.put_bytes("k", b"v")
        assert two.get_bytes("k") == b"v"
        assert memory_store("shared-bucket") is one

    def test_file_url(self, tmp_path):
        store = store_from_url(f"file://{tmp_path}/bucket")
        store.put_bytes("k", b"v")
        assert (tmp_path / "bucket" / "k").read_bytes() == b"v"

    def test_bare_path(self, tmp_path):
        store = store_from_url(str(tmp_path / "bare"))
        assert isinstance(store, LocalDirStore)

    def test_unknown_scheme_raises(self):
        with pytest.raises(StoreError, match="scheme"):
            store_from_url("s3://nope")


class TestCacheSync:
    def _warm_cache(self, tmp_path, name="warm"):
        cache = SweepDiskCache(tmp_path / name)
        cache.put(("scenario", 1), {"elapsed": 1.25})
        cache.put(("scenario", 2), {"elapsed": 2.5})
        return cache

    def test_push_then_pull_restores_entries(self, store, tmp_path):
        warm = self._warm_cache(tmp_path)
        assert push_cache_entries(warm, store) == 2
        cold = SweepDiskCache(tmp_path / "cold")
        assert pull_cache_entries(store, cold) == 2
        assert cold.get(("scenario", 1)) == {"elapsed": 1.25}
        assert cold.get(("scenario", 2)) == {"elapsed": 2.5}

    def test_push_skips_already_pushed(self, store, tmp_path):
        warm = self._warm_cache(tmp_path)
        assert push_cache_entries(warm, store) == 2
        assert push_cache_entries(warm, store) == 0

    def test_pull_skips_existing_local(self, store, tmp_path):
        warm = self._warm_cache(tmp_path)
        push_cache_entries(warm, store)
        assert pull_cache_entries(store, warm) == 0
