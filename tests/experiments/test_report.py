"""Tests for the plain-text experiment reports."""

import pytest

from repro.experiments.ablation import AblationResult
from repro.experiments.figures import figure8
from repro.experiments.paper_data import TABLE2_ROWS
from repro.experiments.report import (
    error_summary,
    format_ablation,
    format_figure,
    format_validation_table,
)
from repro.experiments.runner import ValidationRowResult, ValidationTableResult


def make_table_result() -> ValidationTableResult:
    result = ValidationTableResult(name="table2", machine_name="opteron-gige")
    for row, predicted, measured in zip(TABLE2_ROWS[:3], (9.1, 9.8, 10.2), (9.5, 10.1, 10.6)):
        result.rows.append(ValidationRowResult(
            data_size=row.data_size, pes=row.pes, px=row.px, py=row.py,
            predicted=predicted, measured=measured, paper_row=row))
    return result


class TestValidationTableReport:
    def test_contains_columns_and_rows(self):
        text = format_validation_table(make_table_result())
        assert "Data Size" in text and "Error(%)" in text
        assert "100x100x50" in text and "2x2" in text
        assert "Paper Meas." in text
        assert "average |error|" in text
        assert "paper:" in text

    def test_without_paper_columns(self):
        text = format_validation_table(make_table_result(), include_paper=False)
        assert "Paper Meas." not in text

    def test_handles_prediction_only_rows(self):
        result = ValidationTableResult(name="table1", machine_name="pentium3-myrinet")
        result.rows.append(ValidationRowResult(
            data_size="100x100x50", pes=4, px=2, py=2, predicted=27.5))
        text = format_validation_table(result)
        assert "-" in text

    def test_error_summary(self):
        text = error_summary([make_table_result()])
        assert "table2" in text and "rows" in text


class TestFigureReport:
    def test_figure_table_layout(self):
        result = figure8(processor_counts=[1, 4], rate_factors=[1.0, 1.5])
        text = format_figure(result)
        assert "Processors" in text
        assert "340 MFLOPS" in text and "510 MFLOPS" in text
        # The published-figure comparison footer only appears when the axis
        # reaches the study's full 8000 processors.
        assert "expected 'actual' time" not in text

    def test_figure_footer_on_full_axis(self):
        result = figure8(processor_counts=[1, 8000], rate_factors=[1.0])
        text = format_figure(result)
        assert "expected 'actual' time at 8000 processors" in text


class TestAblationReport:
    def test_format(self):
        ablation = AblationResult(machine_name="opteron-gige", data_size="100x100x50",
                                  pes=4, measured=9.0, coarse_prediction=8.8,
                                  legacy_prediction=13.0)
        text = format_ablation(ablation)
        assert "ablation" in text.lower()
        assert "smaller" in text
        assert ablation.coarse_error_pct == pytest.approx((9.0 - 8.8) / 9.0 * 100)
