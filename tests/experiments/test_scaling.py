"""Tests for the weak-scaling analysis helpers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.figures import figure8
from repro.experiments.scaling import (
    ScalingAnalysis,
    analyze_figure,
    analyze_figure_series,
    analyze_series,
)


class TestAnalyzeSeries:
    def test_perfect_scaling(self):
        analysis = analyze_series([1, 4, 16], [2.0, 2.0, 2.0], label="ideal")
        assert analysis.final_efficiency() == pytest.approx(1.0)
        assert all(p.overhead_fraction == 0.0 for p in analysis.points)
        assert analysis.is_monotone_degrading()

    def test_degrading_scaling(self):
        analysis = analyze_series([1, 4, 16], [2.0, 2.5, 4.0])
        assert analysis.efficiency_at(4) == pytest.approx(0.8)
        assert analysis.efficiency_at(16) == pytest.approx(0.5)
        assert analysis.points[-1].overhead_fraction == pytest.approx(0.5)
        assert analysis.processors_above_efficiency(0.75) == 4
        assert analysis.processors_above_efficiency(0.4) == 16

    def test_threshold_never_reached(self):
        analysis = analyze_series([1, 4], [1.0, 10.0])
        with pytest.raises(ExperimentError):
            analysis.processors_above_efficiency(1.5)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            analyze_series([1, 2], [1.0])
        with pytest.raises(ExperimentError):
            analyze_series([], [])
        with pytest.raises(ExperimentError):
            analyze_series([1, 2], [1.0, 0.0])

    def test_missing_point_lookup(self):
        analysis = analyze_series([1, 8], [1.0, 1.5])
        with pytest.raises(ExperimentError):
            analysis.efficiency_at(64)

    def test_empty_base_time(self):
        with pytest.raises(ExperimentError):
            _ = ScalingAnalysis(label="x").base_time

    def test_describe(self):
        text = analyze_series([1, 4], [1.0, 1.25], label="demo").describe()
        assert "demo" in text and "efficiency" in text


class TestFigureScaling:
    @pytest.fixture(scope="class")
    def fig8_result(self):
        return figure8(processor_counts=[1, 16, 256, 1024], rate_factors=[1.0, 1.5])

    def test_series_analysis(self, fig8_result):
        analysis = analyze_figure_series(fig8_result.actual)
        # Weak-scaling efficiency degrades monotonically as the pipeline
        # lengthens, but stays useful ("good scaling behaviour").
        assert analysis.is_monotone_degrading()
        assert 0.3 < analysis.final_efficiency() < 1.0
        assert analysis.points[0].efficiency == pytest.approx(1.0)

    def test_upgraded_processor_has_lower_efficiency(self, fig8_result):
        """A faster processor shrinks compute but not communication, so its
        weak-scaling efficiency at scale is lower — the classic trade-off the
        speculative study exposes."""
        analyses = analyze_figure(fig8_result)
        assert analyses[1.5].final_efficiency() < analyses[1.0].final_efficiency()

    def test_labels(self, fig8_result):
        analyses = analyze_figure(fig8_result)
        assert "figure8" in analyses[1.0].label
