"""Tests for sharded study execution: plan -> slice -> run -> merge."""

import dataclasses
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.experiments.artifacts import (
    compare_artifact_dirs,
    load_study_results,
    merge_manifests,
    read_manifest,
    write_study_artifacts,
)
from repro.experiments.sharding import (
    is_shard_spec,
    make_shard_spec,
    merge_study_results,
    parent_spec,
    plan_shards,
    resolve_shard,
)
from repro.experiments.study import (
    StudyContext,
    StudyRunner,
    StudySpec,
    build_spec,
    study_names,
)

ALL_STUDIES = tuple(study_names())


@pytest.fixture(scope="module")
def shared_context():
    """One compiled model / machine set across every run of this module."""
    with StudyContext() as ctx:
        yield ctx


@pytest.fixture(scope="module")
def runner(shared_context):
    return StudyRunner(context=shared_context)


@pytest.fixture(scope="module")
def unsharded(runner):
    """Reference smoke results, one per registered study."""
    return {name: runner.run(build_spec(name).smoke()) for name in ALL_STUDIES}


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


class TestPlanning:
    @pytest.mark.parametrize("shards", (2, 3, 4))
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_union_of_shards_is_the_full_grid_disjointly(self, name, shards):
        plan = plan_shards(build_spec(name).smoke(), shards)
        covered = [unit for shard in plan.shards for unit in shard.units]
        assert len(covered) == len(set(covered)), "overlapping shards"
        assert sorted(map(repr, covered)) == sorted(map(repr, plan.unit_values))
        assert all(shard.units for shard in plan.shards), "empty shard"
        assert 1 <= plan.shard_count <= shards

    def test_cost_balancing_beats_worst_case(self):
        """LPT keeps the heaviest shard near the mean, not near the total."""
        plan = plan_shards(build_spec("table1"), 4)
        costs = [shard.estimated_cost for shard in plan.shards]
        total = sum(costs)
        assert plan.shard_count == 4
        # The classic LPT guarantee is 4/3 OPT; the mean is a lower bound
        # on OPT, so the heaviest bin stays well under half the total.
        assert max(costs) <= (total / 4) * (4 / 3) + max(
            unit for shard in plan.shards for unit in [shard.estimated_cost])
        assert max(costs) < total / 2

    def test_shard_specs_distinct_but_tied_to_parent(self):
        parent = build_spec("table1")
        plan = plan_shards(parent, 3)
        hashes = {shard.spec.spec_hash() for shard in plan.shards}
        assert len(hashes) == 3
        assert parent.spec_hash() not in hashes
        for shard in plan.shards:
            assert is_shard_spec(shard.spec)
            params = shard.spec.resolved_params()
            assert params["shard_parent"] == plan.parent_hash
            assert params["shard_count"] == 3
            assert parent_spec(shard.spec) == parent

    def test_plan_is_deterministic_across_processes(self):
        plan = plan_shards(build_spec("table2"), 3)
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.experiments.sharding import plan_shards\n"
            "from repro.experiments.study import build_spec\n"
            "plan = plan_shards(build_spec('table2'), 3)\n"
            "for shard in plan.shards:\n"
            "    print(shard.spec.spec_hash(), list(shard.units))\n"
        )
        output = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            check=True, cwd=str(Path(__file__).resolve().parents[2]))
        lines = [f"{shard.spec.spec_hash()} {list(shard.units)}"
                 for shard in plan.shards]
        assert output.stdout.strip().splitlines() == lines

    def test_more_shards_than_units_collapses(self):
        plan = plan_shards(build_spec("ablation").smoke(), 4)
        assert plan.shard_count == 1
        assert plan.requested == 4
        assert plan.spec_for(3) is None
        assert make_shard_spec(build_spec("ablation").smoke(), 3, 4) is None

    def test_spec_for_rejects_out_of_range(self):
        plan = plan_shards(build_spec("scaling").smoke(), 2)
        with pytest.raises(ExperimentError, match="out of range"):
            plan.spec_for(2)

    def test_planning_a_shard_is_rejected(self):
        shard = make_shard_spec(build_spec("table1"), 0, 2)
        with pytest.raises(ExperimentError, match="already a shard"):
            plan_shards(shard, 2)

    def test_hand_built_shard_params_are_validated(self):
        with pytest.raises(ExperimentError, match="shard_parent"):
            build_spec("table1", shard_index=1, shard_count=2)
        with pytest.raises(ExperimentError, match="out of range"):
            build_spec("table1", shard_index=2, shard_count=2,
                       shard_parent="feed")
        with pytest.raises(ExperimentError, match="shard_count must be"):
            build_spec("table1", shard_count=0)

    def test_shard_specs_round_trip_through_toml(self):
        shard = make_shard_spec(build_spec("figure8"), 1, 3)
        rebuilt = StudySpec.from_toml(shard.to_toml())
        assert rebuilt == shard
        assert rebuilt.spec_hash() == shard.spec_hash()


# ---------------------------------------------------------------------------
# Shard execution
# ---------------------------------------------------------------------------


class TestShardExecution:
    def test_shard_runs_only_its_slice(self, runner, unsharded):
        spec = build_spec("figure8").smoke()
        plan = plan_shards(spec, 3)
        total = 0
        for shard in plan.shards:
            result = runner.run(shard.spec)
            counts = {row["processors"] for row in result.rows}
            assert counts == set(shard.units)
            total += len(result.rows)
        assert total == len(unsharded["figure8"].rows)

    def test_shard_result_records_bookkeeping(self, runner, tmp_path):
        shard = make_shard_spec(build_spec("scaling").smoke(), 0, 2)
        result = runner.run(shard)
        assert result.sharding is not None
        assert result.sharding["shard_index"] == 0
        assert result.sharding["shard_count"] == 2
        assert result.sharding["axis"] == "processor_counts"
        assert result.sharding["parent_spec"] == \
            build_spec("scaling").smoke().to_dict()
        write_study_artifacts([result], tmp_path)
        entry = read_manifest(tmp_path)["studies"][0]
        assert entry["sharding"]["parent_hash"] == \
            build_spec("scaling").smoke().spec_hash()

    def test_tampered_grid_fails_loudly(self, runner):
        shard = make_shard_spec(build_spec("table2", max_iterations=2), 0, 2)
        tampered = StudySpec.from_dict({
            **shard.to_dict(),
            "params": {**shard.to_dict()["params"], "max_iterations": 3},
        })
        with pytest.raises(ExperimentError, match="grid hashes to"):
            runner.run(tampered)

    def test_smoke_after_planning_fails_loudly(self, runner):
        shard = make_shard_spec(build_spec("table1"), 0, 2)
        with pytest.raises(ExperimentError, match="smoke"):
            runner.run(shard.smoke())

    def test_resolve_slices_the_axis_param(self):
        shard = make_shard_spec(build_spec("blocking").smoke(), 1, 2)
        resolution = resolve_shard(shard)
        sliced_params = resolution.sliced.resolved_params()
        assert tuple(sliced_params["mk_values"]) == resolution.assignment.units
        assert not is_shard_spec(resolution.sliced)


# ---------------------------------------------------------------------------
# Merge: bit-identity with the unsharded run
# ---------------------------------------------------------------------------


class TestMergeBitIdentity:
    @pytest.mark.parametrize("shards", (2, 3, 4))
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_merged_rows_are_bit_identical(self, name, shards, runner,
                                           unsharded):
        reference = unsharded[name]
        plan = plan_shards(build_spec(name).smoke(), shards)
        merged = merge_study_results(
            [runner.run(shard.spec) for shard in plan.shards])
        assert merged.rows == reference.rows
        assert merged.columns == reference.columns
        assert merged.spec_hash == reference.spec_hash
        assert merged.machine_fingerprint == reference.machine_fingerprint
        assert merged.sharding is None

    def test_single_shard_plan_merges_to_parent(self, runner, unsharded):
        plan = plan_shards(build_spec("agreement").smoke(), 4)
        assert plan.shard_count == 1        # one smoke processor count
        merged = merge_study_results([runner.run(plan.shards[0].spec)])
        assert merged.rows == unsharded["agreement"].rows
        assert merged.spec_hash == unsharded["agreement"].spec_hash

    def test_merge_order_independent(self, runner, unsharded):
        plan = plan_shards(build_spec("figure9").smoke(), 3)
        results = [runner.run(shard.spec) for shard in plan.shards]
        forward = merge_study_results(results)
        backward = merge_study_results(list(reversed(results)))
        assert forward.rows == backward.rows == unsharded["figure9"].rows


# ---------------------------------------------------------------------------
# Merge: failure modes
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def scaling_shards(runner):
    plan = plan_shards(build_spec("scaling").smoke(), 2)
    assert plan.shard_count == 2
    return [runner.run(shard.spec) for shard in plan.shards]


class TestMergeFailureModes:
    def test_duplicated_shard(self, scaling_shards):
        with pytest.raises(ExperimentError, match="duplicated shard"):
            merge_study_results(scaling_shards + scaling_shards[:1])

    def test_missing_shard(self, scaling_shards):
        with pytest.raises(ExperimentError, match="missing shard"):
            merge_study_results(scaling_shards[:1])

    def test_unsharded_result_mixed_in(self, scaling_shards, runner,
                                       unsharded):
        with pytest.raises(ExperimentError, match="no shard markers"):
            merge_study_results(scaling_shards + [unsharded["scaling"]])

    def test_different_studies(self, scaling_shards, runner):
        other = runner.run(make_shard_spec(build_spec("agreement").smoke(),
                                           0, 1))
        with pytest.raises(ExperimentError, match="different studies"):
            merge_study_results(scaling_shards[:1] + [other])

    def test_different_parents(self, runner):
        a = runner.run(make_shard_spec(
            build_spec("scaling", processor_counts=(1, 4)), 0, 2))
        b = runner.run(make_shard_spec(
            build_spec("scaling", processor_counts=(1, 16)), 1, 2))
        with pytest.raises(ExperimentError, match="different parents"):
            merge_study_results([a, b])

    def test_rows_outside_assignment(self, scaling_shards):
        impostor = dataclasses.replace(scaling_shards[1],
                                       rows=list(scaling_shards[0].rows))
        with pytest.raises(ExperimentError, match="outside its assignment"):
            merge_study_results([scaling_shards[0], impostor])

    def test_analysis_hooks_refused(self, runner):
        parent = build_spec("scaling", processor_counts=(1, 4),
                            analysis=("weak-scaling",))
        plan = plan_shards(parent, 2)
        results = [runner.run(shard.spec) for shard in plan.shards]
        with pytest.raises(ExperimentError, match="analysis hooks"):
            merge_study_results(results)

    def test_empty_merge(self):
        with pytest.raises(ExperimentError, match="no shard results"):
            merge_study_results([])


# ---------------------------------------------------------------------------
# Artifact-directory merge (the CI flow)
# ---------------------------------------------------------------------------


class TestArtifactMerge:
    @pytest.fixture(scope="class")
    def fleet(self, runner, unsharded, tmp_path_factory):
        """A 4-way sharded fleet run of every study, plus the reference."""
        root = tmp_path_factory.mktemp("fleet")
        write_study_artifacts([unsharded[name] for name in ALL_STUDIES],
                              root / "reference")
        per_shard = {index: [] for index in range(4)}
        for name in ALL_STUDIES:
            plan = plan_shards(build_spec(name).smoke(), 4)
            for shard in plan.shards:
                per_shard[shard.index].append(runner.run(shard.spec))
        for index, results in per_shard.items():
            write_study_artifacts(results, root / f"shard-{index}",
                                  allow_empty=True)
        return root

    def test_merged_dir_matches_reference(self, fleet):
        shard_dirs = [fleet / f"shard-{index}" for index in range(4)]
        merge_manifests(shard_dirs, fleet / "merged")
        assert compare_artifact_dirs(fleet / "merged",
                                     fleet / "reference") == []
        merged = read_manifest(fleet / "merged")
        reference = read_manifest(fleet / "reference")
        assert [entry["study"] for entry in merged["studies"]] \
            == [entry["study"] for entry in reference["studies"]]

    def test_out_of_order_dirs_merge_identically(self, fleet):
        shard_dirs = [fleet / f"shard-{index}" for index in (3, 1, 0, 2)]
        merge_manifests(shard_dirs, fleet / "merged-shuffled")
        assert (fleet / "merged-shuffled" / "manifest.json").read_text() \
            == (fleet / "merged" / "manifest.json").read_text()

    def test_duplicated_shard_dir_fails_loudly(self, fleet):
        dirs = [fleet / "shard-0", fleet / "shard-1", fleet / "shard-0"]
        with pytest.raises(ExperimentError, match="duplicated shard"):
            merge_manifests(dirs, fleet / "merged-dup")

    def test_incomplete_fleet_fails_loudly(self, fleet):
        with pytest.raises(ExperimentError, match="missing shard"):
            merge_manifests([fleet / "shard-0"], fleet / "merged-partial")

    def test_duplicate_unsharded_entries_fail_loudly(self, fleet):
        dirs = [fleet / "reference", fleet / "reference"]
        with pytest.raises(ExperimentError, match="more than one input"):
            merge_manifests(dirs, fleet / "merged-twice")

    def test_compare_reports_row_differences(self, runner, unsharded,
                                             tmp_path):
        write_study_artifacts([unsharded["scaling"]], tmp_path / "a")
        other = runner.run(build_spec("scaling",
                                      processor_counts=(1, 4)))
        write_study_artifacts([other], tmp_path / "b")
        diffs = compare_artifact_dirs(tmp_path / "a", tmp_path / "b")
        assert diffs, "differing runs must not compare clean"

    def test_load_study_results_verifies_hashes(self, fleet, tmp_path,
                                                unsharded):
        write_study_artifacts([unsharded["ablation"]], tmp_path)
        manifest_path = tmp_path / "manifest.json"
        manifest_path.write_text(
            manifest_path.read_text().replace('"ablation"', '"agreement"', 1))
        with pytest.raises(ExperimentError):
            load_study_results(tmp_path)

    def test_plain_entries_keep_analysis_output(self, runner, tmp_path):
        """Pass-through of an unsharded analysis run preserves the hooks."""
        spec = build_spec("scaling", processor_counts=(1, 4),
                          analysis=("weak-scaling",))
        result = runner.run(spec)
        assert result.analysis
        write_study_artifacts([result], tmp_path / "orig")
        merge_manifests([tmp_path / "orig"], tmp_path / "roundtrip")
        assert compare_artifact_dirs(tmp_path / "roundtrip",
                                     tmp_path / "orig") == []
        reloaded = load_study_results(tmp_path / "roundtrip")[0]
        assert reloaded.analysis == result.analysis
