"""Tests for the declarative Study API (spec -> runner -> result)."""

import json
import subprocess
import sys

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablation import _run_opcode_ablation_impl
from repro.experiments.blocking import _run_blocking_impl
from repro.experiments.figures import _run_speculative_figure_impl
from repro.experiments.paper_data import FIGURE8_STUDY
from repro.experiments.study import (
    StudyContext,
    StudyRunner,
    StudySpec,
    build_spec,
    get_study,
    load_spec,
    run_study,
    study_names,
)
from repro.experiments.tables import _run_table_impl, run_table, table2
from repro.machines.presets import get_machine

ALL_STUDIES = ("table1", "table2", "table3", "figure8", "figure9",
               "blocking", "scaling", "ablation", "agreement",
               "noise-sensitivity", "steady-scaling")


class TestRegistry:
    def test_every_experiment_is_registered(self):
        assert tuple(study_names()) == ALL_STUDIES

    def test_definitions_are_complete(self):
        for name in study_names():
            definition = get_study(name)
            assert definition.title
            assert callable(definition.execute)
            assert callable(definition.tabulate)

    def test_unknown_study_rejected(self):
        with pytest.raises(ExperimentError, match="unknown study"):
            build_spec("table9")

    def test_unknown_parameter_rejected_loudly(self):
        with pytest.raises(ExperimentError, match="does not accept"):
            build_spec("table2", max_pies=6)

    def test_unserializable_parameter_rejected(self):
        with pytest.raises(ExperimentError, match="not JSON/TOML-serializable"):
            build_spec("figure8", processor_counts=[object()])


class TestSpecCanonicalisation:
    def test_defaults_are_dropped(self):
        explicit = build_spec("table2", simulate_measurement=True,
                              max_iterations=12, max_pes=None)
        implicit = build_spec("table2")
        assert explicit == implicit
        assert explicit.spec_hash() == implicit.spec_hash()

    def test_default_machine_is_dropped(self):
        assert build_spec("figure8", machine="hypothetical-opteron-myrinet") \
            == build_spec("figure8")

    def test_lists_and_tuples_hash_equal(self):
        assert build_spec("figure8", processor_counts=[1, 4]) \
            == build_spec("figure8", processor_counts=(1, 4))

    def test_specs_are_hashable(self):
        assert len({build_spec("table1"), build_spec("table1"),
                    build_spec("table2")}) == 2

    def test_smoke_applies_reduced_grid(self):
        smoke = build_spec("table2").smoke()
        params = smoke.resolved_params()
        assert params["max_pes"] == 6
        assert params["max_iterations"] == 1


class TestSpecSerialization:
    @pytest.mark.parametrize("name", ALL_STUDIES)
    def test_default_specs_round_trip(self, name):
        spec = build_spec(name)
        assert StudySpec.from_toml(spec.to_toml()) == spec
        assert StudySpec.from_json(spec.to_json()) == spec

    def test_rich_spec_round_trips(self):
        spec = build_spec("figure8", machine="pentium3-myrinet",
                          processor_counts=[1, 4, 16], rate_factors=[1.0],
                          workers=3, cache_dir="/tmp/cache",
                          analysis=("weak-scaling",))
        for rebuilt in (StudySpec.from_toml(spec.to_toml()),
                        StudySpec.from_json(spec.to_json())):
            assert rebuilt == spec
            assert rebuilt.spec_hash() == spec.spec_hash()

    def test_load_spec_files(self, tmp_path):
        spec = build_spec("table2", max_pes=6, max_iterations=2)
        toml_file = tmp_path / "spec.toml"
        toml_file.write_text(spec.to_toml())
        json_file = tmp_path / "spec.json"
        json_file.write_text(spec.to_json())
        assert load_spec(toml_file) == spec
        assert load_spec(json_file) == spec

    def test_bad_spec_files(self, tmp_path):
        with pytest.raises(ExperimentError, match="cannot read"):
            load_spec(tmp_path / "missing.toml")
        bad = tmp_path / "bad.toml"
        bad.write_text("= not toml at all [")
        with pytest.raises(ExperimentError, match="invalid study spec"):
            load_spec(bad)
        no_study = tmp_path / "nostudy.toml"
        no_study.write_text('machine = "opteron-gige"\n')
        with pytest.raises(ExperimentError, match="no 'study'"):
            load_spec(no_study)
        extra = tmp_path / "extra.toml"
        extra.write_text('study = "table2"\nfrobnicate = 1\n')
        with pytest.raises(ExperimentError, match="unknown fields"):
            load_spec(extra)

    def test_spec_hash_stable_across_processes(self):
        spec = build_spec("table2", max_pes=6, max_iterations=2,
                          workers=2, analysis=("error-stats",))
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.experiments.study import build_spec\n"
            "spec = build_spec('table2', max_pes=6, max_iterations=2,\n"
            "                  workers=2, analysis=('error-stats',))\n"
            "print(spec.spec_hash())\n"
        )
        output = subprocess.run([sys.executable, "-c", script],
                                capture_output=True, text=True, check=True,
                                cwd=str((__import__('pathlib').Path(__file__)
                                         .resolve().parents[2])))
        assert output.stdout.strip() == spec.spec_hash()


class TestRoundTrippedRunsAreBitIdentical:
    def test_table_spec_round_trip_runs_identically(self):
        spec = build_spec("table2", max_pes=6, max_iterations=2)
        direct = run_study(spec)
        rebuilt = run_study(StudySpec.from_toml(spec.to_toml()))
        assert [row.predicted for row in direct.payload.rows] \
            == [row.predicted for row in rebuilt.payload.rows]
        assert [row.measured for row in direct.payload.rows] \
            == [row.measured for row in rebuilt.payload.rows]

    def test_figure_spec_round_trip_runs_identically(self):
        spec = build_spec("figure8", processor_counts=[1, 4],
                          rate_factors=[1.0, 1.5])
        direct = run_study(spec)
        rebuilt = run_study(StudySpec.from_json(spec.to_json()))
        assert [series.times for series in direct.payload.series] \
            == [series.times for series in rebuilt.payload.series]


class TestShimsMatchDirectImplementations:
    """The deprecation shims route through specs yet stay bit-identical."""

    def test_table_shim_matches_impl(self):
        shimmed = table2(max_pes=6, max_iterations=2)
        direct = _run_table_impl("table2", max_pes=6, max_iterations=2)
        assert [row.predicted for row in shimmed.rows] \
            == [row.predicted for row in direct.rows]
        assert [row.measured for row in shimmed.rows] \
            == [row.measured for row in direct.rows]

    def test_run_table_with_explicit_rows_bypasses_spec(self):
        from repro.experiments.tables import validation_row_for
        row = validation_row_for("table2", 4)
        result = run_table("table2", rows=[row], simulate_measurement=False,
                           max_iterations=2)
        assert len(result.rows) == 1
        assert result.rows[0].pes == 4

    def test_figure_shim_matches_impl(self):
        from repro.experiments.figures import figure8
        shimmed = figure8(processor_counts=[1, 4], rate_factors=[1.0, 1.25])
        direct = _run_speculative_figure_impl(
            FIGURE8_STUDY, processor_counts=[1, 4], rate_factors=[1.0, 1.25])
        assert [series.times for series in shimmed.series] \
            == [series.times for series in direct.series]

    def test_blocking_shim_matches_impl(self):
        from repro.experiments.blocking import run_blocking_study
        kwargs = dict(px=4, py=4, mk_values=(1, 10), mmi_values=(1, 3),
                      max_iterations=2)
        shimmed = run_blocking_study(**kwargs)
        direct = _run_blocking_impl(**kwargs)
        assert [p.predicted_time for p in shimmed.points] \
            == [p.predicted_time for p in direct.points]

    def test_blocking_shim_accepts_machine_instance(self):
        machine = get_machine("pentium3-myrinet")
        result = run_blocking_study_with_machine(machine)
        assert result.machine_name == machine.name

    def test_scaling_shim_matches_impl(self):
        from repro.experiments.scaling import _run_scaling_impl, run_scaling_study
        shimmed = run_scaling_study(processor_counts=(1, 16))
        direct = _run_scaling_impl(processor_counts=(1, 16))
        assert [p.time for p in shimmed.points] == [p.time for p in direct.points]

    def test_ablation_shim_matches_impl(self):
        from repro.experiments.ablation import run_opcode_ablation
        shimmed = run_opcode_ablation(max_iterations=2)
        direct = _run_opcode_ablation_impl(max_iterations=2)
        assert shimmed.coarse_prediction == direct.coarse_prediction
        assert shimmed.legacy_prediction == direct.legacy_prediction
        assert shimmed.measured == direct.measured

    def test_agreement_shim_matches_impl(self):
        from repro.experiments.agreement import (
            _run_model_agreement_impl,
            run_model_agreement,
        )
        shimmed = run_model_agreement(processor_counts=[16, 64])
        direct = _run_model_agreement_impl(processor_counts=[16, 64])
        assert [c.pace for c in shimmed.comparisons] \
            == [c.pace for c in direct.comparisons]
        assert [c.loggp for c in shimmed.comparisons] \
            == [c.loggp for c in direct.comparisons]

    def test_bad_shim_kwargs_fail_loudly(self):
        with pytest.raises(TypeError):
            table2(max_pies=6)
        from repro.experiments.figures import figure8
        with pytest.raises(TypeError):
            figure8(rate_factor=1.5)


def run_blocking_study_with_machine(machine):
    from repro.experiments.blocking import run_blocking_study
    return run_blocking_study(machine=machine, px=2, py=2,
                              cells_per_processor=(5, 5, 20),
                              mk_values=(1, 10), mmi_values=(1, 3),
                              max_iterations=1)


class TestStudyRunner:
    def test_run_by_name_uses_default_spec(self):
        result = StudyRunner().run(build_spec("scaling",
                                              processor_counts=(1, 4)))
        assert result.spec.study == "scaling"
        assert [row["processors"] for row in result.rows] == [1, 4]

    def test_run_many_shares_context(self):
        runner = StudyRunner()
        with StudyContext() as ctx:
            first = runner.run(build_spec("figure8", processor_counts=[1, 4],
                                          rate_factors=[1.0]), context=ctx)
            compiled = ctx.compiled_model()
            second = runner.run(build_spec("figure9", processor_counts=[1, 4],
                                           rate_factors=[1.0]), context=ctx)
            assert ctx.compiled_model() is compiled
        assert first.machine_name == second.machine_name \
            == "hypothetical-opteron-myrinet"
        assert first.machine_fingerprint == second.machine_fingerprint

    def test_shared_cache_spans_studies(self, tmp_path):
        runner = StudyRunner(cache_dir=str(tmp_path / "store"))
        spec = build_spec("table2", max_pes=6, max_iterations=1)
        cold, warm = runner.run_many([spec, spec])
        assert cold.disk_stats.stores > 0
        assert warm.disk_stats.hits > 0
        assert warm.disk_stats.misses == 0
        assert [row.measured for row in cold.payload.rows] \
            == [row.measured for row in warm.payload.rows]

    def test_runner_overrides_apply(self, tmp_path):
        runner = StudyRunner(workers=2, cache_dir=str(tmp_path))
        result = runner.run(build_spec("table2", max_pes=6, max_iterations=1))
        assert result.spec.workers == 2
        assert result.spec.cache_dir == str(tmp_path)

    def test_workers_match_serial(self):
        serial = run_study(build_spec("table2", max_pes=6, max_iterations=1))
        fanned = run_study(build_spec("table2", max_pes=6, max_iterations=1,
                                      workers=2))
        assert [row.measured for row in serial.payload.rows] \
            == [row.measured for row in fanned.payload.rows]
        assert [row.predicted for row in serial.payload.rows] \
            == [row.predicted for row in fanned.payload.rows]

    def test_run_all_smoke_covers_every_study(self):
        results = StudyRunner().run_all(smoke=True)
        assert [result.spec.study for result in results] == list(ALL_STUDIES)
        for result in results:
            assert result.rows, f"{result.spec.study} produced no rows"
            assert result.columns
            assert result.spec_hash
            assert result.elapsed_s >= 0
            json.dumps(result.to_dict(), allow_nan=False)  # strict JSON

    def test_result_describe_renders(self):
        result = run_study(build_spec("table2", max_pes=6, max_iterations=1,
                                      simulate_measurement=False))
        assert "table2" in result.describe()


class TestAnalysisHooks:
    def test_error_stats_hook(self):
        spec = build_spec("table2", max_pes=6, max_iterations=1,
                          simulate_measurement=False,
                          analysis=("error-stats",))
        result = run_study(spec)
        assert "error-stats" in result.analysis
        assert "max_abs_error_pct" in result.analysis["error-stats"]

    def test_weak_scaling_hook_on_figure(self):
        spec = build_spec("figure8", processor_counts=[1, 4, 16],
                          rate_factors=[1.0], analysis=("weak-scaling",))
        result = run_study(spec)
        assert "x1" in result.analysis["weak-scaling"]
        assert 0 < result.analysis["weak-scaling"]["x1"]["final_efficiency"] <= 1

    def test_unknown_hook_rejected(self):
        spec = build_spec("table2", max_pes=4, max_iterations=1,
                          simulate_measurement=False,
                          analysis=("no-such-hook",))
        with pytest.raises(ExperimentError, match="unknown analysis hook"):
            run_study(spec)


class TestReviewRegressions:
    def test_disk_stats_survive_worker_fanout(self, tmp_path):
        """Parallel workers' disk I/O lands in the study's accounting."""
        spec = build_spec("table2", max_pes=6, max_iterations=1, workers=2,
                          cache_dir=str(tmp_path / "store"))
        cold = run_study(spec)
        assert cold.disk_stats.stores > 0
        warm = run_study(spec)
        assert warm.disk_stats.hits > 0

    def test_run_many_honours_each_specs_cache_dir(self, tmp_path):
        from repro.experiments.diskcache import SweepDiskCache
        dir_a, dir_b = tmp_path / "a", tmp_path / "b"
        specs = [build_spec("table2", max_pes=4, max_iterations=1,
                            cache_dir=str(dir_a)),
                 build_spec("table3", max_pes=4, max_iterations=1,
                            cache_dir=str(dir_b))]
        StudyRunner().run_many(specs)
        assert len(SweepDiskCache(dir_a)) > 0
        assert len(SweepDiskCache(dir_b)) > 0

    def test_spec_without_cache_dir_stays_uncached(self, tmp_path):
        from repro.experiments.diskcache import SweepDiskCache
        cached = build_spec("table2", max_pes=4, max_iterations=1,
                            cache_dir=str(tmp_path / "only"))
        uncached = build_spec("table3", max_pes=4, max_iterations=1)
        StudyRunner().run_many([cached, uncached])
        store = SweepDiskCache(tmp_path / "only")
        # Only table2's prediction + measurement entries, nothing of table3's.
        keys = [pickle_key for pickle_key in store.entries()]
        assert len(keys) > 0
        rerun = run_study(cached)
        assert rerun.disk_stats.misses == 0

    def test_manifest_machine_follows_the_actual_run(self):
        """Overriding the ablation's table moves the recorded machine too."""
        result = run_study(build_spec("ablation", table="table1",
                                      max_iterations=1))
        assert result.payload.machine_name == "pentium3-myrinet"
        assert result.machine_name == "pentium3-myrinet"
        default = run_study(build_spec("ablation", max_iterations=1))
        assert default.machine_name == "opteron-gige"
        assert result.machine_fingerprint != default.machine_fingerprint


class TestExecutionTierAccounting:
    """Per-study execution-tier counts (steady/replay/engine bookkeeping)."""

    @pytest.fixture(scope="class")
    def steady_smoke(self):
        return run_study(build_spec("steady-scaling").smoke())

    def test_steady_scaling_smoke_runs_on_the_steady_tier(self, steady_smoke):
        assert steady_smoke.execution == {"steady": 2}
        assert [row["tier"] for row in steady_smoke.rows] == ["steady"] * 2

    def test_execution_counts_survive_to_dict(self, steady_smoke):
        assert steady_smoke.to_dict()["execution"] == {"steady": 2}

    def test_execution_counts_round_trip_through_artifacts(self, steady_smoke,
                                                           tmp_path):
        from repro.experiments.artifacts import (
            load_study_results,
            write_study_artifacts,
        )
        write_study_artifacts([steady_smoke], tmp_path)
        reloaded = load_study_results(tmp_path)[0]
        assert reloaded.execution == steady_smoke.execution

    def test_merged_shards_sum_execution_counts(self, steady_smoke):
        from repro.experiments.sharding import merge_study_results, plan_shards
        plan = plan_shards(build_spec("steady-scaling").smoke(), 2)
        runner = StudyRunner()
        shards = [runner.run(shard.spec) for shard in plan.shards]
        merged = merge_study_results(shards)
        assert merged.execution == steady_smoke.execution
        assert merged.rows == steady_smoke.rows

    def test_forced_engine_execution_is_bit_identical(self, steady_smoke):
        engine = run_study(build_spec("steady-scaling",
                                      sim_execution="engine").smoke())
        assert engine.execution == {"engine": 2}

        def strip(rows):
            return [{k: v for k, v in row.items() if k != "tier"}
                    for row in rows]

        assert strip(engine.rows) == strip(steady_smoke.rows)

    def test_table_studies_report_replay_tier(self):
        result = run_study(build_spec("table2", max_pes=6, max_iterations=1))
        # The validation tables run noisy measurements: the steady tier
        # refuses them and the auto mode serves every scenario by replay.
        assert set(result.execution) == {"replay"}
        assert sum(result.execution.values()) > 0
