"""Tests for the unified batch scenario runner."""

import pytest

from repro.cli import main
from repro.core.evaluation import EvaluationEngine
from repro.core.workload import SweepWorkload
from repro.errors import ExperimentError
from repro.experiments.sweep import Scenario, ScenarioSweep, SweepRunner
from repro.sweep3d.input import standard_deck


def scenario_grid(iterations: int = 2) -> list[Scenario]:
    """A small weak-scaling grid over processor arrays."""
    scenarios = []
    for px, py in [(1, 1), (2, 2), (2, 4), (4, 2), (4, 4), (8, 8)]:
        deck = standard_deck("validation", px=px, py=py,
                             max_iterations=iterations)
        workload = SweepWorkload(deck, px, py)
        scenarios.append(Scenario(label=f"{px}x{py}",
                                  variables=workload.model_variables(),
                                  tags={"px": px, "py": py, "pes": px * py}))
    return scenarios


class TestScenarioSweep:
    def test_grid_declaration(self):
        sweep = ScenarioSweep.grid({"mk": [1, 10], "mmi": [1, 3]},
                                   base={"kt": 100.0})
        assert len(sweep) == 4
        assert [s.label for s in sweep] == [
            "mk=1 mmi=1", "mk=1 mmi=3", "mk=10 mmi=1", "mk=10 mmi=3"]
        first = sweep.scenarios[0]
        assert first.variables == {"kt": 100.0, "mk": 1, "mmi": 1}
        assert first.tags == {"mk": 1, "mmi": 1}


class TestSweepRunner:
    def test_worker_fanout_determinism(self, sweep3d_model, synthetic_hardware):
        """Identical results at workers=1 and workers=4, in input order."""
        scenarios = scenario_grid()
        serial_runner = SweepRunner(model=sweep3d_model,
                                    hardware=synthetic_hardware, workers=1)
        parallel_runner = SweepRunner(model=sweep3d_model,
                                      hardware=synthetic_hardware, workers=4)
        serial = serial_runner.run(scenarios)
        parallel = parallel_runner.run(scenarios)
        assert [o.total_time for o in serial] == [o.total_time for o in parallel]
        assert [o.scenario.label for o in parallel] == [s.label for s in scenarios]
        # stats describe the latest run whatever the worker count.
        assert serial_runner.stats.predictions == len(scenarios)
        assert parallel_runner.stats.predictions == len(scenarios)

    def test_matches_single_point_engine(self, sweep3d_model, synthetic_hardware):
        scenarios = scenario_grid()
        outcomes = SweepRunner(model=sweep3d_model,
                               hardware=synthetic_hardware).run(scenarios)
        engine = EvaluationEngine(sweep3d_model, synthetic_hardware)
        for scenario, outcome in zip(scenarios, outcomes):
            assert outcome.total_time == engine.predict(scenario.variables).total_time

    def test_cache_hit_accounting(self, sweep3d_model, synthetic_hardware):
        runner = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware)
        scenarios = scenario_grid()
        runner.run(scenarios + scenarios)   # the second pass is fully cached
        stats = runner.stats
        assert stats.predictions == 2 * len(scenarios)
        assert stats.subtask_misses > 0
        assert stats.subtask_hits > stats.subtask_misses
        assert 0.0 < stats.subtask_hit_rate < 1.0
        assert "hit" in stats.describe()

    def test_per_scenario_hardware_override(self, sweep3d_model, synthetic_hardware):
        base = scenario_grid(iterations=1)[1]
        faster = Scenario(label="fast", variables=base.variables,
                          hardware=synthetic_hardware.scaled_flop_rate(2.0))
        runner = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware)
        slow_outcome, fast_outcome = runner.run([base, faster])
        assert fast_outcome.total_time < slow_outcome.total_time

    def test_missing_hardware_rejected(self, sweep3d_model):
        runner = SweepRunner(model=sweep3d_model)
        with pytest.raises(ExperimentError):
            runner.run(scenario_grid(iterations=1)[:1])

    def test_invalid_worker_count(self, sweep3d_model):
        with pytest.raises(ExperimentError):
            SweepRunner(model=sweep3d_model, workers=0)

    def test_empty_run(self, sweep3d_model, synthetic_hardware):
        runner = SweepRunner(model=sweep3d_model, hardware=synthetic_hardware)
        assert runner.run([]) == []


class TestSweepCli:
    def test_round_trip(self, capsys):
        assert main(["sweep", "--machine", "opteron", "--deck", "validation",
                     "--arrays", "1x1,2x2", "--iterations", "2",
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep on opteron-gige" in out
        assert "1x1" in out and "2x2" in out
        assert "cache:" in out

    def test_bad_arrays_rejected(self, capsys):
        assert main(["sweep", "--arrays", "2by2"]) == 2
        assert main(["sweep", "--arrays", ","]) == 2
        assert main(["sweep", "--arrays", "0x2"]) == 2
        assert main(["sweep", "--arrays", "2x-1"]) == 2

    def test_bad_workers_rejected(self, capsys):
        assert main(["sweep", "--arrays", "1x1", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().out
