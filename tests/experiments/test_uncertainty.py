"""Tests for multi-seed uncertainty quantification (noise-sensitivity study,
noise calibration)."""

import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.paper_data import PAPER_TABLES
from repro.experiments.study import build_spec, run_study, study_names
from repro.experiments.uncertainty import NoiseCalibration, calibrate_noise
from repro.machines.presets import get_machine
from repro.simnet.noise import NoiseModel


@pytest.fixture(scope="module")
def smoke_result():
    return run_study(build_spec("noise-sensitivity").smoke())


class TestNoiseSensitivityStudy:
    def test_smoke_covers_every_other_study(self, smoke_result):
        payload = smoke_result.payload
        targets = [block.study for block in payload.studies]
        assert targets == [name for name in study_names()
                           if name != "noise-sensitivity"]
        for block in payload.studies:
            sampled = block.sampled()
            assert sampled, f"{block.study} produced no sampled scenarios"
            for entry in sampled:
                assert entry.samples == payload.samples
                assert len(entry.elapsed_samples) == payload.samples
                assert entry.mean is not None
                assert entry.std is not None
                assert entry.ci95 is not None
                assert entry.elapsed == entry.elapsed_samples[0]

    def test_tabulated_rows_carry_ci_columns(self, smoke_result):
        for column in ("samples", "elapsed_s", "elapsed_mean_s",
                       "elapsed_std_s", "elapsed_ci95_s"):
            assert column in smoke_result.columns
        sampled_rows = [row for row in smoke_result.rows if row["samples"]]
        assert sampled_rows
        for row in sampled_rows:
            assert row["elapsed_mean_s"] is not None
            assert row["elapsed_ci95_s"] is not None
        json.dumps(smoke_result.to_dict(), allow_nan=False)  # strict JSON

    def test_describe_reports_spread_and_caps(self, smoke_result):
        text = smoke_result.payload.describe()
        assert "noise sensitivity at 2 sample(s)" in text
        assert "% of mean" in text
        # The smoke profile caps at 2 scenarios/target, so at least one
        # target must report skipped scenarios — the cap is never silent.
        assert "skipped by the max_processors/max_scenarios caps" in text

    def test_sample_zero_matches_the_target_study(self):
        # The table1 target's headline elapsed is the measurement the
        # table1 study itself attaches at matched parameters.
        target = run_study(build_spec("noise-sensitivity", target="table1",
                                      target_smoke=True, samples=2))
        table = run_study(build_spec("table1").smoke())
        scenarios = target.payload.study_for("table1").sampled()
        measured = [row.measured for row in table.payload.rows]
        assert [entry.elapsed for entry in scenarios] == measured

    def test_single_target_runs_only_that_study(self):
        result = run_study(build_spec("noise-sensitivity", target="blocking",
                                      target_smoke=True, samples=2,
                                      iteration_cap=1, max_scenarios=2))
        payload = result.payload
        assert [block.study for block in payload.studies] == ["blocking"]
        assert payload.machine_name == "hypothetical-opteron-myrinet"
        with pytest.raises(ExperimentError, match="no target study"):
            payload.study_for("table1")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ExperimentError, match="samples >= 1"):
            run_study(build_spec("noise-sensitivity", samples=0))
        with pytest.raises(ExperimentError, match="max_processors"):
            run_study(build_spec("noise-sensitivity", max_processors=0))
        with pytest.raises(ExperimentError, match="cannot target itself"):
            run_study(build_spec("noise-sensitivity",
                                 target="noise-sensitivity"))
        with pytest.raises(ExperimentError, match="unknown study"):
            run_study(build_spec("noise-sensitivity", target="table9"))

    def test_max_processors_cap_lists_skipped_scenarios(self):
        result = run_study(build_spec("noise-sensitivity", target="figure8",
                                      target_smoke=True, samples=2,
                                      max_processors=4, iteration_cap=1))
        block = result.payload.study_for("figure8")
        skipped = [entry for entry in block.scenarios if not entry.samples]
        assert skipped
        for entry in skipped:
            assert entry.pes > 4
            assert entry.mean is None


class TestNoiseCalibration:
    def test_calibrates_each_table(self):
        for table_name in sorted(PAPER_TABLES):
            calibration = calibrate_noise(table_name)
            assert isinstance(calibration, NoiseCalibration)
            assert calibration.table == table_name
            assert calibration.machine_name \
                == PAPER_TABLES[table_name]["machine"]
            assert calibration.n_rows >= 2
            assert calibration.residual_rel_std > 0.0
            # Published residuals are a few percent, not orders more.
            assert calibration.residual_rel_std < 0.5

    def test_preserves_the_machine_jitter_ratio(self):
        machine = get_machine("pentium3-myrinet")
        calibration = calibrate_noise("table1", machine=machine)
        assert calibration.compute_jitter == calibration.residual_rel_std
        assert calibration.network_jitter / calibration.compute_jitter \
            == pytest.approx(machine.network_jitter / machine.compute_jitter)

    def test_noise_model_carries_fitted_amplitudes(self):
        calibration = calibrate_noise("table2")
        model = calibration.noise_model(seed=7)
        assert isinstance(model, NoiseModel)
        assert model.seed == 7
        assert model.compute_jitter == calibration.compute_jitter
        assert model.network_jitter == calibration.network_jitter
        base = NoiseModel(seed=0, daemon_interval=0.5, daemon_duration=1e-3)
        derived = calibration.noise_model(seed=3, base=base)
        assert derived.daemon_interval == 0.5
        assert derived.compute_jitter == calibration.compute_jitter
        overrides = calibration.machine_overrides()
        assert overrides == {"compute_jitter": calibration.compute_jitter,
                             "network_jitter": calibration.network_jitter}

    def test_unknown_table_rejected(self):
        with pytest.raises(ExperimentError, match="unknown table"):
            calibrate_noise("table9")


class TestSampledTableStudies:
    def test_table_rows_gain_statistics_and_keep_the_headline(self):
        plain = run_study(build_spec("table1").smoke())
        sampled = run_study(build_spec("table1", samples=3).smoke())
        for before, after in zip(plain.payload.rows, sampled.payload.rows):
            assert after.n_samples == 3
            assert after.measured == before.measured        # headline fixed
            assert after.measured_samples[0] == before.measured
            assert after.measured_mean is not None
            assert after.measured_ci95 is not None
        for column in ("samples", "measured_mean_s", "measured_std_s",
                       "measured_ci95_s"):
            assert column in sampled.columns
            assert column not in plain.columns

    def test_samples_default_keeps_spec_hashes(self):
        assert build_spec("table2", samples=0) == build_spec("table2")
        assert build_spec("table2", samples=0).spec_hash() \
            == build_spec("table2").spec_hash()
