"""Tests for the validation-table experiment harness (Tables 1-3)."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.paper_data import TABLE2_ROWS
from repro.experiments.runner import deck_for_row, run_validation_row
from repro.experiments.tables import run_table, table2, validation_row_for


class TestRunner:
    def test_deck_for_row(self):
        row = TABLE2_ROWS[3]          # 150x200x50 on 3x4
        deck = deck_for_row(row)
        assert (deck.it, deck.jt, deck.kt) == (150, 200, 50)
        assert deck.mk == 10 and deck.max_iterations == 12

    def test_prediction_only_row(self, opteron_machine):
        row = TABLE2_ROWS[0]
        result = run_validation_row(opteron_machine, row, simulate_measurement=False)
        assert result.measured is None
        assert result.error_pct is None
        assert result.predicted > 0
        assert result.paper_measured == pytest.approx(8.98)
        # Prediction should land in the same ballpark as the paper's run time.
        assert result.predicted == pytest.approx(row.measured, rel=0.25)

    def test_row_with_measurement_and_error(self, opteron_machine):
        row = TABLE2_ROWS[0]
        result = run_validation_row(opteron_machine, row, max_iterations=4)
        assert result.measured is not None and result.measured > 0
        assert result.error_pct is not None
        assert abs(result.error_pct) < 10.0

    def test_iteration_scaling(self, opteron_machine):
        row = TABLE2_ROWS[0]
        short = run_validation_row(opteron_machine, row, simulate_measurement=False,
                                   max_iterations=3)
        full = run_validation_row(opteron_machine, row, simulate_measurement=False,
                                  max_iterations=12)
        assert full.predicted == pytest.approx(4 * short.predicted, rel=1e-6)


class TestRunTable:
    def test_prediction_only_table2_all_rows(self):
        result = run_table("table2", simulate_measurement=False)
        assert result.name == "table2"
        assert len(result.rows) == len(TABLE2_ROWS)
        # Shape check against the paper: predictions within 25% of the
        # published measurements and monotonically increasing with PEs.
        predictions = result.predictions()
        assert predictions == sorted(predictions)
        for row in result.rows:
            assert row.predicted == pytest.approx(row.paper_measured, rel=0.25)

    def test_simulated_measurement_errors_below_ten_percent(self):
        result = table2(max_pes=9, max_iterations=12)
        assert result.rows
        assert result.max_abs_error < 10.0
        assert result.average_abs_error < 8.0

    def test_max_pes_filter(self):
        result = run_table("table2", simulate_measurement=False, max_pes=12)
        assert all(row.pes <= 12 for row in result.rows)

    def test_unknown_table(self):
        with pytest.raises(ExperimentError):
            run_table("table9")

    def test_empty_selection(self):
        with pytest.raises(ExperimentError):
            run_table("table2", max_pes=1)

    def test_validation_row_lookup(self):
        row = validation_row_for("table1", 64)
        assert (row.px, row.py) == (8, 8)
        with pytest.raises(ExperimentError):
            validation_row_for("table1", 999)

    def test_table3_prediction_against_paper(self):
        """Altix predictions stay within 25% of the published measurements."""
        result = run_table("table3", simulate_measurement=False, max_pes=30)
        for row in result.rows:
            assert row.predicted == pytest.approx(row.paper_measured, rel=0.25)


class TestErrorStatistics:
    def test_statistics_computed(self, opteron_machine):
        result = run_table("table2", max_pes=6, max_iterations=6)
        errors = result.errors()
        assert len(errors) == 2
        assert result.max_abs_error >= abs(errors[0])
        assert result.error_variance >= 0.0
        assert len(result.measurements()) == 2
