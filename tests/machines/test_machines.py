"""Tests for the machine presets and their measurement campaigns."""

import pytest

from repro.errors import MachineNotFoundError
from repro.machines.presets import MACHINE_PRESETS, get_machine
from repro.sweep3d.input import standard_deck


class TestRegistry:
    def test_five_machines_registered(self):
        assert set(MACHINE_PRESETS) == {
            "pentium3-myrinet", "opteron-gige", "altix-itanium2",
            "hypothetical-opteron-myrinet",
            "hypothetical-opteron-myrinet-1ns"}

    @pytest.mark.parametrize("alias,target", [
        ("pentium3", "pentium3-myrinet"),
        ("table2", "opteron-gige"),
        ("altix", "altix-itanium2"),
        ("speculative", "hypothetical-opteron-myrinet"),
        ("steady", "hypothetical-opteron-myrinet-1ns"),
        ("hypothetical-1ns", "hypothetical-opteron-myrinet-1ns"),
    ])
    def test_aliases(self, alias, target):
        assert get_machine(alias).name == target

    def test_unknown_machine(self):
        with pytest.raises(MachineNotFoundError):
            get_machine("bluegene")

    def test_descriptions_mention_hardware(self):
        assert "Myrinet" in get_machine("pentium3").description
        assert "Gigabit" in get_machine("opteron").description
        assert "Itanium" in get_machine("altix").description


class TestMachineCampaigns:
    def test_hardware_model_profiled_rates(self, p3_machine, opteron_machine):
        deck = standard_deck("validation", px=2, py=2)
        p3_hw = p3_machine.hardware_model(deck, 2, 2)
        opteron_hw = opteron_machine.hardware_model(deck, 2, 2)
        # Paper: 110 and 350 MFLOPS respectively.
        assert p3_hw.cpu.achieved_mflops == pytest.approx(110, rel=0.10)
        assert opteron_hw.cpu.achieved_mflops == pytest.approx(350, rel=0.10)

    def test_hypothetical_machine_uses_fixed_rate(self):
        machine = get_machine("hypothetical")
        deck = standard_deck("asci-20m", px=2, py=2)
        hw = machine.hardware_model(deck, 2, 2)
        assert hw.cpu.achieved_mflops == pytest.approx(340.0)

    def test_flop_rate_override(self, opteron_machine):
        deck = standard_deck("validation", px=2, py=2)
        hw = opteron_machine.hardware_model(deck, 2, 2, flop_rate_override=425e6)
        assert hw.cpu.achieved_mflops == pytest.approx(425.0)

    def test_legacy_cpu_section(self, opteron_machine):
        deck = standard_deck("validation", px=2, py=2)
        hw = opteron_machine.hardware_model(deck, 2, 2, legacy_cpu=True)
        assert hw.cpu.source == "opcode-benchmark"
        # The legacy section charges bookkeeping operations too.
        assert hw.cpu.cost("IFBR") > 0

    def test_mpi_model_cached(self, p3_machine):
        first = p3_machine.mpi_cost_model()
        second = p3_machine.mpi_cost_model()
        assert first is second

    def test_gige_slower_than_myrinet(self, p3_machine, opteron_machine):
        myrinet = p3_machine.mpi_cost_model()
        gige = opteron_machine.mpi_cost_model()
        assert gige.delivery_cost(12000) > myrinet.delivery_cost(12000)

    def test_noise_model_is_seeded(self, p3_machine):
        assert p3_machine.noise_model(0).seed == p3_machine.noise_seed
        assert p3_machine.noise_model(5).seed == p3_machine.noise_seed + 5

    def test_can_host(self, p3_machine):
        assert p3_machine.can_host(128)
        assert not p3_machine.can_host(129)
        assert get_machine("hypothetical").can_host(8000)

    def test_simulate_produces_measurement(self, opteron_machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        run = opteron_machine.simulate(deck, 2, 2)
        assert run.elapsed_time > 0
        assert run.total_messages > 0

    def test_simulation_reproducible_for_same_seed(self, opteron_machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        first = opteron_machine.simulate(deck, 2, 2, seed_offset=3)
        second = opteron_machine.simulate(deck, 2, 2, seed_offset=3)
        assert first.elapsed_time == second.elapsed_time

    def test_simulation_without_noise_is_clean(self, opteron_machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        clean = opteron_machine.simulate(deck, 2, 2, with_noise=False)
        noisy = opteron_machine.simulate(deck, 2, 2, with_noise=True)
        assert noisy.elapsed_time > clean.elapsed_time

    def test_describe(self, p3_machine):
        text = p3_machine.describe()
        assert "processor" in text and "network" in text
