"""Tests for the piece-wise linear communication curve fit."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.profiling.curvefit import (
    PiecewiseLinearModel,
    fit_piecewise_linear,
    fit_single_line,
)


class TestPiecewiseLinearModel:
    def test_evaluate_both_segments(self):
        model = PiecewiseLinearModel(A=1000, B=1e-6, C=1e-9, D=5e-6, E=2e-9)
        assert model.evaluate(500) == pytest.approx(1e-6 + 500e-9 * 1)
        assert model.evaluate(2000) == pytest.approx(5e-6 + 2000 * 2e-9)

    def test_evaluate_many_matches_scalar(self):
        model = PiecewiseLinearModel(A=100, B=1.0, C=0.5, D=2.0, E=0.25)
        sizes = [10, 100, 150, 1000]
        np.testing.assert_allclose(model.evaluate_many(sizes),
                                   [model.evaluate(s) for s in sizes])

    def test_dict_roundtrip(self):
        model = PiecewiseLinearModel(A=64, B=1.5, C=0.1, D=3.0, E=0.05)
        assert PiecewiseLinearModel.from_dict(model.as_dict()) == model

    def test_from_dict_missing_key(self):
        with pytest.raises(ModelError):
            PiecewiseLinearModel.from_dict({"A": 1, "B": 2})

    def test_describe(self):
        text = PiecewiseLinearModel(A=1024, B=2e-6, C=1e-9, D=4e-6, E=2e-9).describe()
        assert "1024" in text


class TestFitting:
    def _synthetic(self, breakpoint=8192.0, b=5e-6, c=2e-9, d=20e-6, e=4e-9):
        sizes = np.array([64, 256, 1024, 2048, 4096, 8192,
                          16384, 32768, 65536, 131072, 262144], dtype=float)
        times = np.where(sizes <= breakpoint, b + c * sizes, d + e * sizes)
        return sizes, times

    def test_recovers_exact_piecewise_data(self):
        sizes, times = self._synthetic()
        model = fit_piecewise_linear(sizes, times)
        np.testing.assert_allclose(model.evaluate_many(sizes), times, rtol=1e-6)
        assert model.A == pytest.approx(8192, rel=0.5)
        assert model.C == pytest.approx(2e-9, rel=0.05)
        assert model.E == pytest.approx(4e-9, rel=0.05)

    def test_fit_tolerates_noise(self):
        rng = np.random.default_rng(0)
        sizes, times = self._synthetic()
        noisy = times * rng.normal(1.0, 0.02, size=times.shape)
        model = fit_piecewise_linear(sizes, noisy)
        predictions = model.evaluate_many(sizes)
        assert np.max(np.abs(predictions - times) / times) < 0.10

    def test_unsorted_input(self):
        sizes, times = self._synthetic()
        order = np.argsort(-sizes)
        model = fit_piecewise_linear(sizes[order], times[order])
        np.testing.assert_allclose(model.evaluate_many(sizes), times, rtol=1e-6)

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            fit_piecewise_linear([1, 2, 3], [1.0, 2.0, 3.0])

    def test_mismatched_lengths(self):
        with pytest.raises(ModelError):
            fit_piecewise_linear([1, 2, 3, 4], [1.0, 2.0])

    def test_pure_linear_data(self):
        sizes = np.linspace(8, 1 << 20, 20)
        times = 3e-6 + sizes * 5e-9
        model = fit_piecewise_linear(sizes, times)
        np.testing.assert_allclose(model.evaluate_many(sizes), times, rtol=1e-9)

    def test_single_line_fallback(self):
        sizes = np.array([8.0, 64.0, 512.0, 4096.0])
        times = 1e-6 + sizes * 1e-9
        model = fit_single_line(sizes, times)
        assert model.B == pytest.approx(1e-6)
        assert model.C == pytest.approx(1e-9)
        assert model.evaluate(1 << 20) == pytest.approx(1e-6 + (1 << 20) * 1e-9)
