"""Tests for the MPI micro-benchmark substitute."""

import pytest

from repro.profiling.mpibench import DEFAULT_SIZES, MpiBenchmark
from repro.simnet.presets import opteron_cluster_topology, pentium3_cluster_topology


@pytest.fixture(scope="module")
def benchmark_data():
    benchmark = MpiBenchmark(pentium3_cluster_topology(), repetitions=3)
    return benchmark.run(sizes=(64, 512, 2048, 8192, 16384, 65536, 262144))


class TestMpiBenchmark:
    def test_collects_all_series(self, benchmark_data):
        n = len(benchmark_data.sizes)
        assert n == 7
        assert len(benchmark_data.send_times) == n
        assert len(benchmark_data.recv_times) == n
        assert len(benchmark_data.pingpong_times) == n

    def test_pingpong_exceeds_send(self, benchmark_data):
        for send, pingpong in zip(benchmark_data.send_times, benchmark_data.pingpong_times):
            assert pingpong > send

    def test_times_grow_with_message_size(self, benchmark_data):
        pingpong = benchmark_data.pingpong_times
        assert pingpong[-1] > pingpong[0]

    def test_fit_produces_three_models(self, benchmark_data):
        fits = benchmark_data.fit()
        assert set(fits) == {"send", "recv", "pingpong"}
        for model in fits.values():
            assert model.evaluate(1024) >= 0

    def test_fitted_pingpong_matches_link_ground_truth(self, benchmark_data):
        """The fitted curve reproduces the underlying link's one-way cost."""
        link = pentium3_cluster_topology().inter_node
        model = benchmark_data.fit()["pingpong"]
        for nbytes in (1024, 8192, 131072):
            truth = link.ping_pong_time(nbytes)
            assert model.evaluate(nbytes) == pytest.approx(truth, rel=0.15)

    def test_one_way_model_is_half_pingpong(self, benchmark_data):
        one_way = benchmark_data.one_way_model()
        pingpong = benchmark_data.fit()["pingpong"]
        assert one_way.evaluate(4096) == pytest.approx(pingpong.evaluate(4096) / 2, rel=0.05)

    def test_effective_bandwidth_close_to_link(self, benchmark_data):
        benchmark = MpiBenchmark(pentium3_cluster_topology(), repetitions=3)
        bandwidth = benchmark.effective_bandwidth(benchmark_data)
        link = pentium3_cluster_topology().inter_node
        assert bandwidth == pytest.approx(link.bandwidth, rel=0.30)

    def test_intra_node_faster_than_inter_node(self):
        benchmark = MpiBenchmark(opteron_cluster_topology(), repetitions=2)
        sizes = (512, 4096, 16384, 65536)
        inter = benchmark.run(sizes=sizes, inter_node=True)
        intra = benchmark.run(sizes=sizes, inter_node=False)
        assert intra.pingpong_times[0] < inter.pingpong_times[0]

    def test_default_sizes_span_protocol_switch(self):
        assert min(DEFAULT_SIZES) < 1024
        assert max(DEFAULT_SIZES) > 128 * 1024
