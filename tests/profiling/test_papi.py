"""Tests for the PAPI-substitute flop profiler."""

import pytest

from repro.profiling.papi import FlopProfiler
from repro.sweep3d.input import standard_deck
from repro.sweep3d.kernel import SweepKernel


class TestFlopProfiler:
    def test_profile_reports_achieved_rate(self, p3_processor):
        deck = standard_deck("validation", 1, 1)
        profile = FlopProfiler(p3_processor).profile(deck)
        assert profile.flops > 0
        assert profile.achieved_flop_rate == pytest.approx(
            profile.flops / profile.execute_time)
        assert 0 < profile.efficiency < 1
        assert profile.achieved_mflops == pytest.approx(
            profile.achieved_flop_rate / 1e6)

    def test_paper_rate_reproduced_for_pentium3(self, p3_processor):
        deck = standard_deck("validation", 1, 1)
        profile = FlopProfiler(p3_processor).profile(deck)
        assert profile.achieved_mflops == pytest.approx(110.0, rel=0.10)

    def test_cells_per_processor_profile(self, opteron_processor):
        deck = standard_deck("validation", px=4, py=4)
        profile = FlopProfiler(opteron_processor).profile_cells_per_processor(deck, 4, 4)
        assert profile.cells == (50, 50, 50)

    def test_rate_depends_on_subdomain_size(self, opteron_processor):
        """Smaller per-processor problems run out of cache and go faster."""
        profiler = FlopProfiler(opteron_processor)
        small = profiler.profile(standard_deck("asci-20m", 1, 1), nx=5, ny=5)
        large = profiler.profile(standard_deck("validation", 1, 1), nx=50, ny=50)
        assert small.achieved_flop_rate > large.achieved_flop_rate

    def test_seconds_per_flop(self, p3_processor):
        deck = standard_deck("validation", 1, 1)
        profile = FlopProfiler(p3_processor).profile(deck)
        assert profile.seconds_per_flop == pytest.approx(1.0 / profile.achieved_flop_rate)

    def test_legacy_rate_differs(self, opteron_processor):
        deck = standard_deck("validation", 1, 1)
        profile = FlopProfiler(opteron_processor).profile(deck)
        assert profile.legacy_flop_rate != pytest.approx(profile.achieved_flop_rate, rel=0.05)

    def test_verify_static_counts_accepts_capp_tally(self, p3_processor):
        from repro.core.capp import analyze_sweep_kernel_resource
        profiler = FlopProfiler(p3_processor)
        capp_mix = analyze_sweep_kernel_resource().tally(
            "sweep_block", dict(nx=10, ny=10, mk=5, mmi=3)).to_operation_mix()
        reference = SweepKernel.cell_mix().scaled(10 * 10 * 5 * 3)
        assert profiler.verify_static_counts(capp_mix, reference, tolerance=0.05)

    def test_verify_static_counts_rejects_wrong_counts(self, p3_processor):
        profiler = FlopProfiler(p3_processor)
        reference = SweepKernel.cell_mix().scaled(100)
        wrong = SweepKernel.cell_mix().scaled(150)
        assert not profiler.verify_static_counts(wrong, reference, tolerance=0.05)

    def test_describe(self, p3_processor):
        deck = standard_deck("validation", 1, 1)
        text = FlopProfiler(p3_processor).profile(deck).describe()
        assert "MFLOPS" in text
