"""Coalescer semantics: dedup, micro-batching, flushing, failure."""

import asyncio

import pytest

from repro.service.batching import RequestCoalescer


class Recorder:
    """An execute callback that logs every batch it receives."""

    def __init__(self, fail_with: Exception | None = None,
                 short_change: bool = False):
        self.batches: list[tuple] = []
        self.fail_with = fail_with
        self.short_change = short_change

    async def __call__(self, group, keys, items):
        self.batches.append((group, list(keys), list(items)))
        if self.fail_with is not None:
            raise self.fail_with
        results = [f"{group}:{key}" for key in keys]
        return results[:-1] if self.short_change else results


class TestDedup:
    def test_same_key_shares_one_evaluation(self):
        async def main():
            recorder = Recorder()
            coalescer = RequestCoalescer(recorder, window_s=0.005)
            results = await asyncio.gather(
                *(coalescer.submit("g", "k", index) for index in range(5)))
            assert results == ["g:k"] * 5
            assert len(recorder.batches) == 1
            assert recorder.batches[0][1] == ["k"]
            stats = coalescer.stats
            assert stats.requests == 5
            assert stats.unique == 1
            assert stats.coalesced == 4
        asyncio.run(main())

    def test_distinct_keys_one_batch_ordered(self):
        async def main():
            recorder = Recorder()
            coalescer = RequestCoalescer(recorder, window_s=0.005)
            results = await asyncio.gather(
                coalescer.submit("g", "a", 1),
                coalescer.submit("g", "b", 2),
                coalescer.submit("g", "c", 3))
            assert results == ["g:a", "g:b", "g:c"]
            assert recorder.batches == [("g", ["a", "b", "c"], [1, 2, 3])]
        asyncio.run(main())

    def test_groups_batch_independently(self):
        async def main():
            recorder = Recorder()
            coalescer = RequestCoalescer(recorder, window_s=0.005)
            results = await asyncio.gather(
                coalescer.submit("g1", "k", 1),
                coalescer.submit("g2", "k", 2))
            assert results == ["g1:k", "g2:k"]
            assert len(recorder.batches) == 2
        asyncio.run(main())


class TestFlushing:
    def test_max_batch_flushes_before_window(self):
        async def main():
            recorder = Recorder()
            # A one-minute window: only the size trigger can flush in time.
            coalescer = RequestCoalescer(recorder, window_s=60.0,
                                         max_batch=2)
            results = await asyncio.wait_for(
                asyncio.gather(coalescer.submit("g", "a", 1),
                               coalescer.submit("g", "b", 2)),
                timeout=5.0)
            assert results == ["g:a", "g:b"]
        asyncio.run(main())

    def test_sequential_submissions_make_separate_batches(self):
        async def main():
            recorder = Recorder()
            coalescer = RequestCoalescer(recorder, window_s=0.0)
            first = await coalescer.submit("g", "k", 1)
            second = await coalescer.submit("g", "k", 2)
            assert first == second == "g:k"
            assert coalescer.stats.batches == 2
        asyncio.run(main())

    def test_zero_window_still_coalesces_same_tick(self):
        async def main():
            recorder = Recorder()
            coalescer = RequestCoalescer(recorder, window_s=0.0)
            results = await asyncio.gather(
                *(coalescer.submit("g", "k", index) for index in range(3)))
            assert results == ["g:k"] * 3
            assert len(recorder.batches) == 1
        asyncio.run(main())

    def test_pending_drains_to_zero(self):
        async def main():
            coalescer = RequestCoalescer(Recorder(), window_s=0.0)
            await coalescer.submit("g", "k", 1)
            # The batch task resolves waiter futures before it finishes;
            # one more tick lets its done-callback drop the bookkeeping.
            for _ in range(10):
                if coalescer.pending() == 0:
                    break
                await asyncio.sleep(0)
            assert coalescer.pending() == 0
        asyncio.run(main())


class TestFailure:
    def test_executor_error_reaches_every_waiter(self):
        async def main():
            boom = RuntimeError("backend exploded")
            coalescer = RequestCoalescer(Recorder(fail_with=boom),
                                         window_s=0.005)
            results = await asyncio.gather(
                *(coalescer.submit("g", f"k{i}", i) for i in range(3)),
                return_exceptions=True)
            assert all(result is boom for result in results)
        asyncio.run(main())

    def test_result_count_mismatch_is_an_error(self):
        async def main():
            coalescer = RequestCoalescer(Recorder(short_change=True),
                                         window_s=0.005)
            results = await asyncio.gather(
                coalescer.submit("g", "a", 1),
                coalescer.submit("g", "b", 2),
                return_exceptions=True)
            assert all(isinstance(result, RuntimeError)
                       for result in results)
        asyncio.run(main())

    def test_rejects_silly_max_batch(self):
        with pytest.raises(ValueError):
            RequestCoalescer(Recorder(), max_batch=0)
