"""PredictionService: tiered caching, bit-identity, dispatch routing."""

import asyncio
import json

import pytest

import repro.api as api
from repro.errors import ServiceError
from repro.service import protocol
from repro.service.core import PredictionService, ResultLRU
from repro.service.http import HttpRequest
from repro.service.protocol import (
    HealthRequest,
    PredictRequest,
    SimulateRequest,
)

MACHINE = "pentium3-myrinet"


def run_with_service(main, **kwargs):
    """Run an async test body against a fresh service on a fresh loop."""

    async def wrapper():
        service = PredictionService(**kwargs)
        try:
            return await main(service)
        finally:
            service.close()

    return asyncio.run(wrapper())


def post(path, message):
    body = json.dumps(protocol.encode(message)).encode()
    return HttpRequest(method="POST", target=path, body=body)


class TestResultLRU:
    def test_hits_misses_and_recency(self):
        lru = ResultLRU(maxsize=2)
        assert lru.get("a") is None
        lru.put("a", 1)
        lru.put("b", 2)
        assert lru.get("a") == 1  # "a" is now the most recent entry
        lru.put("c", 3)  # evicts "b", the least recent
        assert lru.get("b") is None
        assert lru.get("a") == 1
        assert lru.get("c") == 3
        stats = lru.as_dict()
        assert stats["hits"] == 3
        assert stats["misses"] == 2
        assert stats["evictions"] == 1
        assert stats["size"] == 2

    def test_maxsize_zero_disables_the_tier(self):
        lru = ResultLRU(maxsize=0)
        lru.put("a", 1)
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ServiceError):
            ResultLRU(maxsize=-1)


class TestBitIdentity:
    def test_predict_matches_direct_api_call(self):
        direct = api.predict(MACHINE, 2, 2, iterations=2)

        async def main(service):
            return await service.predict(PredictRequest(
                machine=MACHINE, px=2, py=2, iterations=2))

        response = run_with_service(main)
        assert response.total_time == direct.total_time
        assert response.compute_time == direct.compute_time
        assert response.communication_time == direct.communication_time
        assert response.source == "computed"

    def test_simulate_matches_direct_api_call_including_seed(self):
        direct = api.simulate(MACHINE, 2, 2, iterations=1, seed_offset=3)

        async def main(service):
            return await service.simulate(SimulateRequest(
                machine=MACHINE, px=2, py=2, iterations=1, seed=3))

        response = run_with_service(main)
        assert response.elapsed_time == direct.elapsed_time
        assert response.total_messages == direct.total_messages
        assert response.seed == 3

    def test_warm_repeat_is_served_from_memory(self):
        async def main(service):
            request = PredictRequest(machine=MACHINE, px=2, py=2,
                                     iterations=2)
            cold = await service.predict(request)
            warm = await service.predict(request)
            return cold, warm, service.lru.as_dict()

        cold, warm, lru = run_with_service(main)
        assert cold.source == "computed"
        assert warm.source == "memory"
        assert warm.total_time == cold.total_time
        assert lru["hits"] == 1

    def test_concurrent_identical_predicts_coalesce(self):
        async def main(service):
            request = PredictRequest(machine=MACHINE, px=2, py=2,
                                     iterations=2)
            responses = await asyncio.gather(
                *(service.predict(request) for _ in range(4)))
            return responses, service.coalescer.stats

        responses, stats = run_with_service(main, window_s=0.01)
        assert len({r.total_time for r in responses}) == 1
        assert stats.requests == 4
        assert stats.unique == 1
        assert stats.coalesced == 3
        assert stats.batches == 1


class TestDiskTier:
    def test_second_service_hits_the_persistent_cache(self, tmp_path):
        cache_dir = tmp_path / "sweep-cache"

        async def cold(service):
            return await service.simulate(SimulateRequest(
                machine=MACHINE, px=2, py=2, iterations=1))

        first = run_with_service(cold, cache_dir=cache_dir)
        cache = api.default_context().cache_for(cache_dir)
        before = cache.stats_snapshot()

        async def warm(service):
            # This instance's LRU is empty: the request must fall through
            # to the disk tier, not recompute.
            return await service.simulate(SimulateRequest(
                machine=MACHINE, px=2, py=2, iterations=1))

        second = run_with_service(warm, cache_dir=cache_dir)
        after = cache.stats_snapshot()
        assert second.elapsed_time == first.elapsed_time
        assert after.hits == before.hits + 1


class TestValidation:
    def test_unknown_execution_mode_rejected(self):
        async def main(service):
            with pytest.raises(ServiceError, match="execution mode"):
                await service.simulate(SimulateRequest(
                    machine=MACHINE, px=2, py=2, execution="warp"))

        run_with_service(main)

    def test_geometry_must_be_positive_integers(self):
        async def main(service):
            with pytest.raises(ServiceError, match="'px'"):
                await service.predict(PredictRequest(
                    machine=MACHINE, px=0, py=2))
            with pytest.raises(ServiceError, match="'py'"):
                await service.predict(PredictRequest(
                    machine=MACHINE, px=2, py=True))

        run_with_service(main)


class TestDispatch:
    def test_get_health_is_200(self):
        async def main(service):
            return await service.dispatch(
                HttpRequest(method="GET", target="/v1/health"))

        status, payload = run_with_service(main)
        assert status == 200
        response = protocol.decode_response(payload)
        assert response.status == "ok"
        assert "table1" in response.studies

    def test_unknown_path_is_404(self):
        async def main(service):
            return await service.dispatch(
                HttpRequest(method="GET", target="/v1/teleport"))

        status, payload = run_with_service(main)
        assert status == 404
        assert "teleport" in payload["error"]

    def test_unsupported_method_is_405(self):
        async def main(service):
            return await service.dispatch(
                HttpRequest(method="DELETE", target="/v1/health"))

        status, _ = run_with_service(main)
        assert status == 405

    def test_wrong_message_type_for_endpoint_is_400(self):
        async def main(service):
            return await service.dispatch(post("/v1/predict",
                                               HealthRequest()))

        status, payload = run_with_service(main)
        assert status == 400
        assert "expects" in payload["error"]

    def test_unknown_machine_is_400_not_500(self):
        async def main(service):
            return await service.dispatch(post(
                "/v1/predict",
                PredictRequest(machine="cray-ymp", px=2, py=2)))

        status, payload = run_with_service(main)
        assert status == 400
        assert "cray-ymp" in payload["error"]

    def test_unknown_job_is_404(self):
        async def main(service):
            return await service.dispatch(
                HttpRequest(method="GET", target="/v1/jobs/job-9999-nope"))

        status, _ = run_with_service(main)
        assert status == 404

    def test_round_trip_predict_over_dispatch(self):
        direct = api.predict(MACHINE, 2, 2, iterations=2)

        async def main(service):
            return await service.dispatch(post(
                "/v1/predict",
                PredictRequest(machine=MACHINE, px=2, py=2, iterations=2)))

        status, payload = run_with_service(main)
        assert status == 200
        response = protocol.decode_response(payload)
        assert response.total_time == direct.total_time

    def test_errors_are_counted_in_stats(self):
        async def main(service):
            await service.dispatch(
                HttpRequest(method="GET", target="/v1/teleport"))
            status, payload = await service.dispatch(
                HttpRequest(method="GET", target="/v1/stats"))
            return status, protocol.decode_response(payload)

        status, stats = run_with_service(main)
        assert status == 200
        assert stats.requests.get("errors") == 1
