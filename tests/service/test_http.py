"""The minimal HTTP/1.1 layer: parsing, limits, rendering."""

import asyncio
import json

import pytest

from repro.service.http import (
    MAX_BODY,
    HttpError,
    HttpRequest,
    format_response,
    read_request,
)


def parse(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(main())


class TestReadRequest:
    def test_get_without_body(self):
        request = parse(b"GET /v1/health HTTP/1.1\r\n"
                        b"Host: localhost\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/health"
        assert request.body == b""
        assert request.keep_alive

    def test_post_with_json_body(self):
        body = json.dumps({"v": 1, "type": "health"}).encode()
        request = parse(b"POST /v1/predict HTTP/1.1\r\n"
                        b"Content-Type: application/json\r\n"
                        + f"Content-Length: {len(body)}\r\n\r\n".encode()
                        + body)
        assert request.method == "POST"
        assert request.json() == {"v": 1, "type": "health"}

    def test_headers_lowercased_and_connection_close(self):
        request = parse(b"GET / HTTP/1.1\r\nCONNECTION: Close\r\n\r\n")
        assert request.headers["connection"] == "Close"
        assert not request.keep_alive

    def test_target_query_stripped_by_path(self):
        request = parse(b"GET /v1/jobs?limit=5 HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/jobs"
        assert request.target == "/v1/jobs?limit=5"

    def test_end_of_stream_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError, match="request line"):
            parse(b"NONSENSE\r\n\r\n")

    def test_unsupported_protocol(self):
        with pytest.raises(HttpError, match="unsupported protocol"):
            parse(b"GET / SPDY/99\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HttpError, match="Content-Length"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: soon\r\n\r\n")

    def test_oversized_body_rejected(self):
        with pytest.raises(HttpError) as exc_info:
            parse(b"POST / HTTP/1.1\r\n"
                  + f"Content-Length: {MAX_BODY + 1}\r\n\r\n".encode())
        assert exc_info.value.status == 413

    def test_truncated_body_rejected(self):
        with pytest.raises(HttpError, match="truncated"):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_header_without_colon_rejected(self):
        with pytest.raises(HttpError, match="no colon"):
            parse(b"GET / HTTP/1.1\r\nBroken-Header\r\n\r\n")


class TestJsonBody:
    def test_empty_body_raises(self):
        request = HttpRequest(method="POST", target="/x")
        with pytest.raises(HttpError, match="empty"):
            request.json()

    def test_invalid_json_raises(self):
        request = HttpRequest(method="POST", target="/x", body=b"{nope")
        with pytest.raises(HttpError, match="not valid JSON"):
            request.json()


class TestFormatResponse:
    def test_shape_and_round_trip(self):
        payload = {"v": 1, "type": "health", "status": "ok"}
        data = format_response(200, payload)
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(body) == payload

    def test_close_and_unknown_status(self):
        data = format_response(418, {}, close=True)
        assert data.startswith(b"HTTP/1.1 418 Unknown\r\n")
        assert b"Connection: close" in data
