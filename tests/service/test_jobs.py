"""Background-job lifecycle: submit → running → done/failed/cancelled."""

import asyncio
import threading

import pytest

import repro.api as api
from repro.errors import ServiceError
from repro.service.jobs import JobManager
from repro.experiments.study import StudyResult


def tiny_spec():
    """A prediction-only study that runs in well under a second."""
    return api.build_spec("scaling", processor_counts=(1,))


class TestLifecycle:
    def test_submit_runs_to_done_bit_identical(self, tmp_path):
        spec = tiny_spec()
        direct = api.run_study(spec, context=api.default_context()).to_dict()

        async def main():
            manager = JobManager(api.default_context(),
                                 artifact_root=tmp_path)
            record = await manager.submit(spec)
            assert record.state in ("queued", "running")
            assert record.job_id.startswith("job-0001-")
            await record.task
            return record, manager

        record, manager = asyncio.run(main())
        assert record.state == "done"
        assert record.error is None
        remote = record.result.to_dict()
        assert remote["rows"] == direct["rows"]
        assert remote["spec_hash"] == direct["spec_hash"]
        path, files, manifest = manager.artifacts(record)
        assert "manifest.json" in files
        assert manifest is not None
        assert record.artifact_dir.name == record.job_id

    def test_smoke_submission_reduces_the_grid(self):
        async def main():
            manager = JobManager(api.default_context())
            record = await manager.submit(api.build_spec("scaling"),
                                          smoke=True)
            await record.task
            return record

        record = asyncio.run(main())
        assert record.state == "done"
        # The scaling smoke grid is (1, 16): two points, not five.
        assert len(record.result.rows) == 2

    def test_failure_is_reported_not_raised(self):
        async def main():
            manager = JobManager(api.default_context())
            manager._execute = lambda record: (_ for _ in ()).throw(
                RuntimeError("study exploded"))
            record = await manager.submit(tiny_spec())
            await record.task
            return record

        record = asyncio.run(main())
        assert record.state == "failed"
        assert "study exploded" in record.error
        assert record.result is None


class TestCancellation:
    def test_queued_job_cancels_before_running(self, tmp_path):
        async def main():
            manager = JobManager(api.default_context(),
                                 artifact_root=tmp_path)
            release = threading.Event()

            def blocking_execute(record):
                release.wait(10)
                return (StudyResult(spec=record.spec, payload=None), None)

            manager._execute = blocking_execute
            first = await manager.submit(tiny_spec())
            second = await manager.submit(tiny_spec())
            # Let the first job take the single run slot.
            while first.state != "running":
                await asyncio.sleep(0.001)
            assert second.state == "queued"
            record, honoured = await manager.cancel(second.job_id)
            assert honoured
            assert record.state == "cancelled"
            release.set()
            await first.task
            assert first.state == "done"
            return manager

        manager = asyncio.run(main())
        assert manager.counts() == {"done": 1, "cancelled": 1}

    def test_running_job_cancel_is_recorded_not_honoured(self):
        async def main():
            manager = JobManager(api.default_context())
            started = threading.Event()
            release = threading.Event()

            def blocking_execute(record):
                started.set()
                release.wait(10)
                return (StudyResult(spec=record.spec, payload=None), None)

            manager._execute = blocking_execute
            record = await manager.submit(tiny_spec())
            while not started.is_set():
                await asyncio.sleep(0.001)
            cancelled_record, honoured = await manager.cancel(record.job_id)
            assert not honoured
            assert cancelled_record.state == "running"
            assert cancelled_record.cancel_requested
            release.set()
            await record.task
            return record

        record = asyncio.run(main())
        assert record.state == "done"


class TestLookup:
    def test_unknown_job_raises_404(self):
        async def main():
            manager = JobManager(api.default_context())
            with pytest.raises(ServiceError) as exc_info:
                manager.get("job-9999-deadbeef")
            assert exc_info.value.status == 404

        asyncio.run(main())

    def test_artifacts_refused_until_done(self, tmp_path):
        async def main():
            manager = JobManager(api.default_context(),
                                 artifact_root=tmp_path)
            release = threading.Event()

            def blocking_execute(record):
                release.wait(10)
                return (StudyResult(spec=record.spec, payload=None), None)

            manager._execute = blocking_execute
            record = await manager.submit(tiny_spec())
            with pytest.raises(ServiceError) as exc_info:
                manager.artifacts(record)
            assert exc_info.value.status == 409
            release.set()
            await record.task

        asyncio.run(main())

    def test_records_in_submission_order(self):
        async def main():
            manager = JobManager(api.default_context())
            first = await manager.submit(tiny_spec())
            second = await manager.submit(tiny_spec())
            await asyncio.gather(first.task, second.task)
            return manager, first, second

        manager, first, second = asyncio.run(main())
        assert [record.job_id for record in manager.records()] \
            == [first.job_id, second.job_id]


class TestFleetExecution:
    def test_fleet_backed_job_is_bit_identical(self, tmp_path):
        spec = tiny_spec()
        direct = api.run_study(spec, context=api.default_context()).to_dict()

        async def main():
            manager = JobManager(api.default_context(),
                                 artifact_root=tmp_path, fleet_workers=2)
            record = await manager.submit(spec)
            await record.task
            return record

        record = asyncio.run(main())
        assert record.state == "done", record.error
        remote = record.result.to_dict()
        assert remote["rows"] == direct["rows"]
        assert remote["spec_hash"] == direct["spec_hash"]

    def test_single_fleet_worker_shares_the_service_cache(self):
        spec = tiny_spec()
        context = api.default_context()
        inline = api.run_study(spec, context=context).to_dict()

        async def main():
            manager = JobManager(context, fleet_workers=1)
            record = await manager.submit(spec)
            await record.task
            return record

        record = asyncio.run(main())
        assert record.state == "done", record.error
        assert record.result.to_dict()["rows"] == inline["rows"]

    def test_negative_fleet_workers_rejected(self):
        with pytest.raises(ServiceError, match="fleet_workers"):
            JobManager(api.default_context(), fleet_workers=-1)
