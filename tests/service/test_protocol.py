"""Wire-protocol round-trips and strict decode validation."""

import json

import pytest

from repro.errors import ProtocolError
from repro.service import protocol
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ErrorResponse,
    HealthRequest,
    HealthResponse,
    JobArtifactsRequest,
    JobArtifactsResponse,
    JobCancelRequest,
    JobCancelResponse,
    JobListRequest,
    JobListResponse,
    JobResultRequest,
    JobResultResponse,
    JobStatusRequest,
    JobStatusResponse,
    PredictRequest,
    PredictResponse,
    SimulateRequest,
    SimulateResponse,
    StatsRequest,
    StatsResponse,
    StudySubmitRequest,
    decode_request,
    decode_response,
    encode,
)

REQUESTS = [
    PredictRequest(machine="pentium3-myrinet", px=2, py=3),
    PredictRequest(machine="opteron", px=1, py=1, deck="mini", iterations=4),
    SimulateRequest(machine="pentium3", px=2, py=2, seed=7, samples=3,
                    execution="replay", with_noise=False),
    StudySubmitRequest(spec="table1"),
    StudySubmitRequest(spec={"study": "table1", "params": {"max_pes": 4}},
                       smoke=True),
    JobStatusRequest(job_id="job-0001-abc"),
    JobResultRequest(job_id="job-0001-abc"),
    JobArtifactsRequest(job_id="job-0001-abc"),
    JobCancelRequest(job_id="job-0001-abc"),
    JobListRequest(),
    HealthRequest(),
    StatsRequest(),
]

RESPONSES = [
    PredictResponse(total_time=1.25, compute_time=1.0,
                    communication_time=0.25, hardware_name="SunUltra1",
                    application_name="sweep3d", source="memory"),
    SimulateResponse(machine="Pentium3-Myrinet", px=2, py=2,
                     elapsed_time=2.5, seed=7, iterations=12,
                     total_messages=96, total_bytes=1024.0,
                     compute_fraction=0.75, execution_tier="replay",
                     elapsed_samples=(2.5, 2.6), elapsed_mean=2.55,
                     elapsed_std=0.05, elapsed_ci95=0.07),
    JobStatusResponse(job_id="job-1", state="running", study="table1",
                      spec_hash="ff" * 32),
    JobListResponse(jobs=(("job-1", "done"), ("job-2", "queued"))),
    JobResultResponse(job_id="job-1", state="done",
                      result={"rows": [{"pes": 4}]}),
    JobArtifactsResponse(job_id="job-1", path="/tmp/x",
                         files=("manifest.json", "table1.json"),
                         manifest={"version": "1.0.0"}),
    JobCancelResponse(job_id="job-1", state="cancelled", cancelled=True),
    HealthResponse(version="1.0.0", studies=("table1", "table2"),
                   machines=("pentium3-myrinet",)),
    StatsResponse(uptime_s=3.5, requests={"predict": 2},
                  coalescer={"requests": 2}, lru={"hits": 1},
                  disk={"stores": 1}, jobs={"done": 1}),
    ErrorResponse(error="unknown job", status=404),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", REQUESTS,
                             ids=lambda m: type(m).__name__)
    def test_requests_survive_json(self, message):
        wire = json.loads(json.dumps(encode(message)))
        assert decode_request(wire) == message

    @pytest.mark.parametrize("message", RESPONSES,
                             ids=lambda m: type(m).__name__)
    def test_responses_survive_json(self, message):
        wire = json.loads(json.dumps(encode(message)))
        assert decode_response(wire) == message

    def test_envelope_carries_version_and_type(self):
        wire = encode(PredictRequest(machine="m", px=1, py=1))
        assert wire["v"] == PROTOCOL_VERSION
        assert wire["type"] == "predict"

    def test_tuples_are_arrays_on_the_wire(self):
        wire = encode(JobListResponse(jobs=(("a", "done"),)))
        assert wire["jobs"] == [["a", "done"]]


class TestValidation:
    def test_rejects_wrong_version(self):
        wire = encode(HealthRequest())
        wire["v"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="version"):
            decode_request(wire)

    def test_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown service request"):
            decode_request({"v": PROTOCOL_VERSION, "type": "teleport"})

    def test_rejects_unknown_field(self):
        wire = encode(PredictRequest(machine="m", px=1, py=1))
        wire["surprise"] = True
        with pytest.raises(ProtocolError, match="unexpected field"):
            decode_request(wire)

    def test_rejects_missing_required_field(self):
        wire = encode(PredictRequest(machine="m", px=1, py=1))
        del wire["machine"]
        with pytest.raises(ProtocolError, match="predict"):
            decode_request(wire)

    def test_rejects_non_object_payload(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode_request([1, 2, 3])

    def test_request_and_response_registries_are_separate(self):
        with pytest.raises(ProtocolError):
            decode_request(encode(PredictResponse(
                total_time=1.0, compute_time=0.5, communication_time=0.5)))
        assert "predict" in protocol.request_types()
        assert "predict_result" in protocol.response_types()
