"""Real-socket end-to-end: server task and client in one event loop."""

import asyncio
import functools
import json

import pytest

import repro.api as api
from repro.cli import main
from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.core import BackgroundServer, PredictionService

MACHINE = "pentium3-myrinet"


def serve(test_body, **service_kwargs):
    """Run ``test_body(client, service)`` against a live socket.

    The service's ``asyncio.Server`` and the blocking :class:`ServiceClient`
    share one event loop: the client's synchronous HTTP calls run on
    executor threads while the server task handles them on the loop.
    """

    async def main_():
        service = PredictionService(**service_kwargs)
        server = await service.start("127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        client = ServiceClient(port=port)
        loop = asyncio.get_running_loop()
        try:
            async with server:
                return await loop.run_in_executor(
                    None, functools.partial(test_body, client, service))
        finally:
            service.close()

    return asyncio.run(main_())


class TestSocketEndToEnd:
    def test_health_and_stats(self):
        def body(client, service):
            health = client.health()
            assert health.status == "ok"
            assert MACHINE in health.machines
            stats = client.stats()
            assert stats.uptime_s >= 0.0
            return health

        serve(body)

    def test_predict_bit_identical_and_cached(self):
        direct = api.predict(MACHINE, 2, 2, iterations=2)

        def body(client, service):
            cold = client.predict(MACHINE, 2, 2, iterations=2)
            warm = client.predict(MACHINE, 2, 2, iterations=2)
            assert cold.total_time == direct.total_time
            assert cold.source == "computed"
            assert warm.source == "memory"
            assert warm.total_time == cold.total_time

        serve(body)

    def test_study_job_lifecycle_over_the_wire(self, tmp_path):
        spec = api.build_spec("scaling", processor_counts=(1,))
        direct = api.run_study(spec, context=api.default_context()).to_dict()

        def body(client, service):
            status = client.submit_study(spec)
            assert status.state in ("queued", "running", "done")
            final = client.wait(status.job_id, timeout=120)
            assert final.state == "done"
            result = client.result(status.job_id)
            assert result.result["rows"] == direct["rows"]
            assert result.result["spec_hash"] == direct["spec_hash"]
            artifacts = client.artifacts(status.job_id)
            assert "manifest.json" in artifacts.files
            jobs = client.jobs()
            assert (status.job_id, "done") in jobs.jobs

        serve(body, artifact_dir=tmp_path)

    def test_service_errors_cross_the_wire(self):
        def body(client, service):
            with pytest.raises(ServiceError) as exc_info:
                client.status("job-9999-nope")
            assert exc_info.value.status == 404
            with pytest.raises(ServiceError) as exc_info:
                client.predict("cray-ymp", 2, 2)
            assert exc_info.value.status == 400

        serve(body)


class TestBackgroundServerAndCli:
    def test_cli_client_predict_against_background_server(self, capsys):
        direct = api.predict(MACHINE, 2, 2, iterations=2)
        with BackgroundServer() as server:
            code = main(["client", "--port", str(server.port), "predict",
                         "--machine", MACHINE, "--px", "2", "--py", "2",
                         "--iterations", "2"])
            assert code == 0
            out = capsys.readouterr().out
            assert f"predicted time: {direct.total_time:.6f} s" in out
            code = main(["client", "--port", str(server.port), "health"])
            assert code == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["status"] == "ok"

    def test_cli_client_connection_refused_is_exit_2(self, capsys):
        # Nothing listens on the background server's port once it is gone.
        with BackgroundServer() as server:
            port = server.port
        code = main(["client", "--port", str(port), "health"])
        assert code == 2
        assert capsys.readouterr().out.startswith("error:")
