"""Tests for periodic trace capture (repro.simmpi.capture).

The capture tier inherits the steady tier's contract: the synthesized
trace is **bit-identical** to what the full O(events) recorder would
have produced, or the tier refuses loudly (``TraceError``) and the
caller falls back to the full recorder.  The property test below checks
exact equality of every trace observable — event tables, send tables,
per-rank statistics, traffic, return values — and of the replay results
on both the noise-free and noisy paths, across randomly drawn decks,
processor arrays and iteration counts.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.machines.presets import get_machine
from repro.simmpi.capture import CaptureInfo, collectives_per_period, tile_trace
from repro.simmpi.steady import detect_period
from repro.simmpi.trace import TraceRecorder
from repro.simnet.noise import NoiseModel
from repro.sweep3d.driver import SimulationPlan
from repro.sweep3d.input import Sweep3DInput


@pytest.fixture(scope="module")
def machine():
    # Dyadic timebase: the steady tier accepts, so the tiled trace can be
    # exercised end to end through every execution tier.
    return get_machine("steady")


def make_plan(machine, deck, px, py, **kwargs):
    return SimulationPlan(deck, px, py, machine.topology,
                          processor=machine.processor, **kwargs)


ARRAY_COLUMNS = ("event_kind", "event_rank", "event_slot", "event_aux",
                 "event_peer", "event_tag", "event_nbytes",
                 "_base", "_noise_kind", "_send_eager_arr", "_send_rank_arr")


def assert_traces_identical(got, want):
    """Bitwise equality of every observable of two compiled traces."""
    assert got.nranks == want.nranks
    for column in ARRAY_COLUMNS:
        a, b = getattr(got, column), getattr(want, column)
        assert a.dtype == b.dtype, column
        assert np.array_equal(a, b), column
    assert got._messages_sent == want._messages_sent
    assert got._bytes_sent == want._bytes_sent
    assert got._messages_received == want._messages_received
    assert got._bytes_received == want._bytes_received
    assert got._traffic == want._traffic
    assert got._return_values == want._return_values


def result_key(sim):
    return (sim.elapsed_time,
            tuple((r.finish_time, r.compute_time, r.comm_time,
                   r.messages_sent, r.bytes_sent, r.messages_received,
                   r.bytes_received) for r in sim.ranks),
            sim.traffic.messages, sim.traffic.bytes)


# ---------------------------------------------------------------------------
# Bit-identity of periodic capture vs the full recorder
# ---------------------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    it=st.integers(min_value=6, max_value=14),
    jt=st.integers(min_value=6, max_value=14),
    kt=st.sampled_from([6, 10, 12]),
    mk=st.sampled_from([2, 5]),
    px=st.integers(min_value=1, max_value=2),
    py=st.integers(min_value=1, max_value=3),
    iterations=st.integers(min_value=14, max_value=40),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_periodic_capture_bit_identity(machine, it, jt, kt, mk, px, py,
                                       iterations, seed):
    deck = Sweep3DInput(it=max(it, px), jt=max(jt, py), kt=kt, mk=mk,
                        mmi=3, sn=6, max_iterations=iterations)
    plan = make_plan(machine, deck, px, py)
    tiled = plan.compile_trace()
    full = plan._record_trace(deck)
    assert_traces_identical(tiled, full)
    if plan.last_capture.mode == "periodic":
        assert plan.last_capture.short_iterations < iterations
    else:
        # Only a genuinely non-amortisable structure may fall back.
        assert plan.last_capture.mode == "full"
        assert plan.last_capture.reason
    # Replay observables, noise-free and noisy, at a shared seed.
    assert result_key(tiled.replay(NoiseModel.disabled())) \
        == result_key(full.replay(NoiseModel.disabled()))
    assert result_key(tiled.replay(NoiseModel(seed=seed))) \
        == result_key(full.replay(NoiseModel(seed=seed)))


def test_periodic_capture_is_the_default_at_scale(machine):
    deck = Sweep3DInput(it=16, jt=16, kt=12, mk=4, mmi=3, sn=6,
                        max_iterations=30)
    plan = make_plan(machine, deck, 2, 2)
    plan.compile_trace()
    info = plan.last_capture
    assert info.mode == "periodic"
    assert info.total_iterations == 30
    assert info.tiles >= 1
    assert info.iterations_per_period >= 1
    assert info.capture_s >= 0.0
    assert "periodic" in info.describe()


def test_steady_tier_accepts_tiled_trace(machine):
    deck = Sweep3DInput(it=12, jt=12, kt=10, mk=5, mmi=3, sn=6,
                        max_iterations=24)
    plan = make_plan(machine, deck, 2, 2)
    result = plan.run(mode="steady")
    assert plan.last_capture.mode == "periodic"
    assert plan.last_execution == "steady"
    reference = make_plan(machine, deck, 2, 2)
    ref = reference._record_trace(deck).replay(NoiseModel.disabled())
    assert result.elapsed_time == ref.elapsed_time


def test_engine_cross_check_at_matched_seed(machine):
    deck = Sweep3DInput(it=10, jt=10, kt=10, mk=5, mmi=3, sn=6,
                        max_iterations=16)
    plan = make_plan(machine, deck, 1, 2)
    assert plan.compile_trace() is plan.compile_trace()  # cached on plan
    assert plan.last_capture.mode == "periodic"
    replayed = plan.run(noise=NoiseModel(seed=11), mode="replay")
    engine = make_plan(machine, deck, 1, 2).run(noise=NoiseModel(seed=11),
                                                mode="engine")
    assert replayed.elapsed_time == engine.elapsed_time
    assert replayed.rank_summaries == engine.rank_summaries


# ---------------------------------------------------------------------------
# Loud refusals and the full-recorder fallback
# ---------------------------------------------------------------------------


def test_few_iterations_fall_back_to_full_capture(machine):
    deck = Sweep3DInput(it=8, jt=8, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=10)
    plan = make_plan(machine, deck, 2, 2)
    plan.compile_trace()
    assert plan.last_capture.mode == "full"
    assert "too few iterations" in plan.last_capture.reason


def test_no_collectives_fall_back_to_full_capture(machine):
    deck = Sweep3DInput(it=8, jt=8, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=20)
    plan = make_plan(machine, deck, 2, 2, convergence_collectives=False)
    tiled = plan.compile_trace()
    assert plan.last_capture.mode == "full"
    assert "anchor" in plan.last_capture.reason
    assert_traces_identical(tiled, plan._record_trace(deck))


def test_aperiodic_program_refuses_tiling(machine):
    # Every compute duration is distinct: no period ever forms, so the
    # detector refuses and tile_trace must too.
    def aperiodic(comm):
        for step in range(1, 40):
            yield comm.compute(2.0 ** -10 * step)
        return comm.rank

    recorder = TraceRecorder(machine.topology, processor=machine.processor)
    trace = recorder.record(aperiodic, nranks=2)
    info = detect_period(trace)
    assert not info.periodic
    with pytest.raises(TraceError, match="periodic capture refused"):
        tile_trace(trace, info, 3, return_values=[0, 1],
                   topology=machine.topology)


def test_tile_trace_needs_at_least_one_tile(machine):
    deck = Sweep3DInput(it=8, jt=8, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=20)
    plan = make_plan(machine, deck, 1, 1)
    short = plan._record_trace(deck)
    info = detect_period(short)
    assert info.periodic
    with pytest.raises(TraceError, match="at least one tile"):
        tile_trace(short, info, 0, return_values=list(short._return_values),
                   topology=machine.topology)


def test_collectives_per_period_counts_two_per_iteration(machine):
    deck = Sweep3DInput(it=8, jt=8, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=20)
    plan = make_plan(machine, deck, 2, 1)
    short = plan._record_trace(deck)
    info = detect_period(short)
    assert info.periodic
    per_period = collectives_per_period(short, info)
    assert per_period >= 2 and per_period % 2 == 0


def test_capture_info_describe_modes():
    assert "trace-cache hit" in CaptureInfo(mode="cache",
                                            total_iterations=7).describe()
    full = CaptureInfo(mode="full", total_iterations=7, reason="because")
    assert "full recorder" in full.describe()
    assert "because" in full.describe()


def test_numeric_plans_still_raise(machine):
    deck = Sweep3DInput(it=6, jt=6, kt=6, mk=3, mmi=3, sn=6,
                        max_iterations=20)
    plan = make_plan(machine, deck, 1, 1, numeric=True)
    with pytest.raises(TraceError):
        plan.compile_trace()
    assert plan.last_capture is None
