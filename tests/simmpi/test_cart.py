"""Tests for the 2-D Cartesian decomposition helper."""

import pytest

from repro.errors import DecompositionError
from repro.simmpi.cart import Cart2D


class TestCoordinates:
    def test_roundtrip(self):
        cart = Cart2D(3, 4)
        for rank in range(cart.size):
            i, j = cart.coords(rank)
            assert cart.rank(i, j) == rank

    def test_row_major_layout(self):
        cart = Cart2D(2, 3)
        assert cart.coords(0) == (0, 0)
        assert cart.coords(1) == (0, 1)
        assert cart.coords(3) == (1, 0)

    def test_out_of_range(self):
        cart = Cart2D(2, 2)
        with pytest.raises(DecompositionError):
            cart.coords(4)
        with pytest.raises(DecompositionError):
            cart.rank(2, 0)

    def test_invalid_dimensions(self):
        with pytest.raises(DecompositionError):
            Cart2D(0, 3)


class TestNeighbours:
    def test_interior_neighbours(self):
        cart = Cart2D(3, 3)
        centre = cart.rank(1, 1)
        assert cart.east(centre) == cart.rank(2, 1)
        assert cart.west(centre) == cart.rank(0, 1)
        assert cart.north(centre) == cart.rank(1, 2)
        assert cart.south(centre) == cart.rank(1, 0)

    def test_boundary_has_no_neighbour(self):
        cart = Cart2D(3, 3)
        assert cart.west(cart.rank(0, 1)) is None
        assert cart.south(cart.rank(1, 0)) is None
        assert cart.east(cart.rank(2, 1)) is None
        assert cart.north(cart.rank(1, 2)) is None


class TestSweepSupport:
    def test_corner_ranks(self):
        cart = Cart2D(4, 5)
        assert cart.corner_rank(+1, +1) == cart.rank(0, 0)
        assert cart.corner_rank(-1, +1) == cart.rank(3, 0)
        assert cart.corner_rank(+1, -1) == cart.rank(0, 4)
        assert cart.corner_rank(-1, -1) == cart.rank(3, 4)

    def test_upstream_downstream_are_opposite(self):
        cart = Cart2D(4, 4)
        rank = cart.rank(2, 1)
        up_i, up_j = cart.upstream(rank, +1, +1)
        dn_i, dn_j = cart.downstream(rank, +1, +1)
        assert up_i == cart.rank(1, 1)
        assert up_j == cart.rank(2, 0)
        assert dn_i == cart.rank(3, 1)
        assert dn_j == cart.rank(2, 2)

    def test_origin_corner_has_no_upstream(self):
        cart = Cart2D(3, 3)
        origin = cart.corner_rank(+1, -1)
        up_i, up_j = cart.upstream(origin, +1, -1)
        assert up_i is None and up_j is None

    def test_sweep_depth(self):
        cart = Cart2D(4, 4)
        assert cart.sweep_depth(cart.corner_rank(+1, +1), +1, +1) == 0
        far = cart.rank(3, 3)
        assert cart.sweep_depth(far, +1, +1) == 6

    def test_invalid_direction(self):
        cart = Cart2D(2, 2)
        with pytest.raises(DecompositionError):
            cart.upstream(0, 0, 1)


class TestFactorisation:
    @pytest.mark.parametrize("nranks,expected", [
        (1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (12, (3, 4)), (16, (4, 4)),
        (30, (5, 6)), (112, (8, 14)), (8000, (80, 100)),
    ])
    def test_near_square_factorisation(self, nranks, expected):
        cart = Cart2D.for_size(nranks)
        assert (cart.px, cart.py) == expected
        assert cart.size == nranks

    def test_prime_count_falls_back_to_row(self):
        cart = Cart2D.for_size(13)
        assert cart.size == 13
        assert cart.px == 1 and cart.py == 13

    def test_invalid_size(self):
        with pytest.raises(DecompositionError):
            Cart2D.for_size(0)
