"""Tests for the SimComm facade and payload size estimation."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.simmpi.communicator import SimComm, payload_nbytes
from repro.simmpi.operations import Compute, Recv, Send


class TestPayloadSize:
    def test_numpy_array(self):
        assert payload_nbytes(np.zeros(100)) == 800

    def test_scalars(self):
        assert payload_nbytes(1.5) == 8
        assert payload_nbytes(7) == 8
        assert payload_nbytes(np.float64(2.0)) == 8

    def test_bytes(self):
        assert payload_nbytes(b"abcd") == 4

    def test_numeric_sequence(self):
        assert payload_nbytes([1.0, 2.0, 3.0]) == 24

    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_fallback_for_objects(self):
        assert payload_nbytes({"a": 1}) > 0


class TestSimComm:
    def test_rank_and_size(self):
        comm = SimComm(2, 4)
        assert comm.rank == 2
        assert comm.size == 4

    def test_invalid_construction(self):
        with pytest.raises(CommunicatorError):
            SimComm(4, 4)
        with pytest.raises(CommunicatorError):
            SimComm(0, 0)

    def test_send_builds_descriptor(self):
        comm = SimComm(0, 2)
        op = comm.send(np.zeros(10), dest=1, tag=7)
        assert isinstance(op, Send)
        assert op.dest == 1 and op.tag == 7 and op.nbytes == 80

    def test_send_explicit_nbytes(self):
        comm = SimComm(0, 2)
        assert comm.send(None, dest=1, nbytes=1234).nbytes == 1234

    def test_send_to_invalid_rank(self):
        comm = SimComm(0, 2)
        with pytest.raises(CommunicatorError):
            comm.send(1.0, dest=5)

    def test_recv_wildcards(self):
        comm = SimComm(0, 2)
        op = comm.recv()
        assert isinstance(op, Recv)
        assert op.source == SimComm.ANY_SOURCE
        assert op.tag == SimComm.ANY_TAG

    def test_recv_invalid_source(self):
        comm = SimComm(0, 2)
        with pytest.raises(CommunicatorError):
            comm.recv(source=9)

    def test_compute_negative_rejected(self):
        comm = SimComm(0, 1)
        with pytest.raises(CommunicatorError):
            comm.compute(-1.0)

    def test_compute_descriptor(self):
        comm = SimComm(0, 1)
        op = comm.compute(0.5)
        assert isinstance(op, Compute)
        assert op.seconds == 0.5

    def test_allreduce_coerces_operator(self):
        comm = SimComm(0, 2)
        op = comm.allreduce(1.0, op="max")
        assert op.op.value == "max"

    def test_bcast_invalid_root(self):
        comm = SimComm(0, 2)
        with pytest.raises(CommunicatorError):
            comm.bcast(1.0, root=3)

    def test_repr(self):
        assert "rank=1" in repr(SimComm(1, 8))
