"""Collective operations of the discrete-event MPI engine."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.simmpi.engine import ClusterEngine
from repro.simmpi.operations import ReduceOp
from repro.simnet.link import LinkModel
from repro.simnet.topology import ClusterTopology


@pytest.fixture
def engine() -> ClusterEngine:
    link = LinkModel(name="test", latency=5e-6, bandwidth=200e6,
                     send_overhead=1e-6, recv_overhead=1e-6)
    topology = ClusterTopology(name="flat", processors_per_node=1, inter_node=link)
    return ClusterEngine(topology)


class TestAllReduce:
    def test_sum(self, engine):
        def program(comm):
            total = yield comm.allreduce(float(comm.rank + 1), op="sum")
            return total

        result = engine.run(program, nranks=4)
        assert result.return_values == [10.0, 10.0, 10.0, 10.0]

    def test_max_and_min(self, engine):
        def program(comm):
            largest = yield comm.allreduce(float(comm.rank), op="max")
            smallest = yield comm.allreduce(float(comm.rank), op="min")
            return (largest, smallest)

        result = engine.run(program, nranks=5)
        assert result.return_values[0] == (4.0, 0.0)

    def test_prod(self, engine):
        def program(comm):
            value = yield comm.allreduce(2.0, op=ReduceOp.PROD)
            return value

        result = engine.run(program, nranks=3)
        assert result.return_values[0] == pytest.approx(8.0)

    def test_array_reduction(self, engine):
        def program(comm):
            contribution = np.full(3, float(comm.rank))
            total = yield comm.allreduce(contribution, op="sum")
            return total

        result = engine.run(program, nranks=3)
        np.testing.assert_allclose(result.return_values[0], [3.0, 3.0, 3.0])

    def test_all_ranks_synchronised_to_same_time(self, engine):
        def program(comm):
            yield comm.compute(1e-3 * comm.rank)
            yield comm.allreduce(1.0, op="sum")
            finish = yield comm.now()
            return finish

        result = engine.run(program, nranks=4)
        finishes = result.return_values
        assert max(finishes) - min(finishes) < 1e-12
        # Completion cannot precede the slowest rank's arrival.
        assert min(finishes) >= 3e-3

    def test_single_rank_costs_nothing(self, engine):
        def program(comm):
            value = yield comm.allreduce(5.0, op="sum")
            return value

        result = engine.run(program, nranks=1)
        assert result.return_values == [5.0]
        assert result.elapsed_time == pytest.approx(0.0)

    def test_cost_grows_with_rank_count(self, engine):
        def program(comm):
            yield comm.allreduce(1.0, op="sum")
            return None

        small = engine.run(program, nranks=2).elapsed_time
        large = engine.run(program, nranks=16).elapsed_time
        assert large > small


class TestBarrierAndBcast:
    def test_barrier_aligns_clocks(self, engine):
        def program(comm):
            yield comm.compute(2e-3 if comm.rank == 0 else 1e-4)
            yield comm.barrier()
            after = yield comm.now()
            return after

        result = engine.run(program, nranks=3)
        assert max(result.return_values) - min(result.return_values) < 1e-12
        assert min(result.return_values) >= 2e-3

    def test_bcast_distributes_root_value(self, engine):
        def program(comm):
            value = {"data": 99} if comm.rank == 1 else None
            received = yield comm.bcast(value, root=1)
            return received["data"]

        result = engine.run(program, nranks=4)
        assert result.return_values == [99, 99, 99, 99]

    def test_repeated_collectives_in_a_loop(self, engine):
        def program(comm):
            totals = []
            for iteration in range(5):
                totals.append((yield comm.allreduce(float(iteration), op="sum")))
            return totals

        result = engine.run(program, nranks=3)
        assert result.return_values[0] == [0.0, 3.0, 6.0, 9.0, 12.0]

    def test_mismatched_collectives_raise(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.barrier()
            else:
                yield comm.allreduce(1.0, op="sum")
            return None

        with pytest.raises(CommunicatorError):
            engine.run(program, nranks=2)


class TestReduceOp:
    def test_coerce_from_string(self):
        assert ReduceOp.coerce("SUM") is ReduceOp.SUM
        assert ReduceOp.coerce(ReduceOp.MAX) is ReduceOp.MAX

    def test_unknown_operator(self):
        with pytest.raises(CommunicatorError):
            ReduceOp.coerce("median")

    def test_combine_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            ReduceOp.SUM.combine([])
