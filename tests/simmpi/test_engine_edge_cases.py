"""Edge-case behaviour of the discrete-event MPI engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simmpi.engine import ClusterEngine
from repro.simnet.link import LinkModel
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology


def make_engine(eager_threshold: float = 16 * 1024, **engine_kwargs) -> ClusterEngine:
    link = LinkModel(name="edge", latency=5e-6, bandwidth=100e6,
                     eager_threshold=eager_threshold,
                     send_overhead=1e-6, recv_overhead=1e-6)
    topology = ClusterTopology(name="edge-cluster", processors_per_node=2,
                               inter_node=link,
                               intra_node=LinkModel(name="shm", latency=5e-7,
                                                    bandwidth=1e9))
    return ClusterEngine(topology, **engine_kwargs)


class TestSelfAndZeroMessages:
    def test_eager_self_send(self):
        """An eager send to self followed by a receive must not deadlock."""
        def program(comm):
            yield comm.send({"x": 1}, dest=comm.rank, tag=0)
            data = yield comm.recv(source=comm.rank, tag=0)
            return data["x"]

        result = make_engine().run(program, nranks=1)
        assert result.return_values == [1]

    def test_rendezvous_self_send_deadlocks(self):
        """A rendezvous send to self can never be matched — a programming
        error that must surface as a deadlock, not hang."""
        def program(comm):
            yield comm.send(None, dest=comm.rank, tag=0, nbytes=1 << 20)
            yield comm.recv(source=comm.rank, tag=0)

        with pytest.raises(DeadlockError):
            make_engine(eager_threshold=1024).run(program, nranks=1)

    def test_zero_byte_message(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=0, tag=3)
                return None
            yield comm.recv(source=0, tag=3)
            finish = yield comm.now()
            return finish

        result = make_engine().run(program, nranks=2)
        # Even an empty message pays the latency and overheads.
        assert result.return_values[1] > 0

    def test_any_tag_matching(self):
        def program(comm):
            if comm.rank == 0:
                yield comm.send("payload", dest=1, tag=42)
                return None
            data = yield comm.recv(source=0, tag=comm.ANY_TAG)
            return data

        result = make_engine().run(program, nranks=2)
        assert result.return_values[1] == "payload"


class TestIntraNodeVsInterNode:
    def test_intra_node_message_is_faster(self):
        def program(comm, peer):
            if comm.rank == 0:
                yield comm.send(None, dest=peer, nbytes=8192, tag=1)
                return None
            if comm.rank == peer:
                yield comm.recv(source=0, tag=1)
                finish = yield comm.now()
                return finish
            yield comm.compute(0.0)
            return None

        engine = make_engine()
        intra = engine.run(program, nranks=4, program_args=(1,)).return_values[1]
        inter = engine.run(program, nranks=4, program_args=(2,)).return_values[2]
        assert intra < inter


class TestOperationBudget:
    def test_runaway_program_is_stopped(self):
        def program(comm):
            while True:
                yield comm.compute(1e-9)

        engine = make_engine(max_operations=500)
        with pytest.raises(SimulationError):
            engine.run(program, nranks=1)


class TestNoiseIntegration:
    def test_noisy_runs_differ_per_seed_but_not_per_repeat(self):
        def program(comm):
            peer = 1 - comm.rank
            for _ in range(10):
                if comm.rank == 0:
                    yield comm.compute(1e-4)
                    yield comm.send(None, dest=peer, nbytes=4096, tag=0)
                else:
                    yield comm.recv(source=peer, tag=0)
            return None

        def elapsed(seed):
            engine = make_engine(noise=NoiseModel(seed=seed))
            return engine.run(program, nranks=2).elapsed_time

        assert elapsed(1) == elapsed(1)
        assert elapsed(1) != elapsed(2)

    def test_noise_does_not_change_results(self):
        def program(comm):
            total = yield comm.allreduce(float(comm.rank), op="sum")
            return total

        engine = make_engine(noise=NoiseModel(seed=9))
        result = engine.run(program, nranks=4)
        assert result.return_values == [6.0, 6.0, 6.0, 6.0]


class TestManyRanks:
    def test_ring_exchange_scales_to_many_ranks(self):
        """A 64-rank non-blocking ring exchange completes and preserves data."""
        def program(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            send_req = yield comm.isend(comm.rank, dest=right, tag=1)
            recv_req = yield comm.irecv(source=left, tag=1)
            value = yield comm.wait(recv_req)
            yield comm.wait(send_req)
            return value

        result = make_engine().run(program, nranks=64)
        assert result.return_values == [(r - 1) % 64 for r in range(64)]

    def test_reduction_over_many_ranks(self):
        def program(comm):
            total = yield comm.allreduce(1.0, op="sum")
            return total

        result = make_engine().run(program, nranks=100)
        assert all(value == pytest.approx(100.0) for value in result.return_values)
