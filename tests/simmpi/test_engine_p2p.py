"""Point-to-point semantics of the discrete-event MPI engine."""

import numpy as np
import pytest

from repro import units
from repro.errors import DeadlockError, RankFailureError, SimulationError
from repro.simmpi.engine import ClusterEngine
from repro.simnet.link import LinkModel
from repro.simnet.topology import ClusterTopology


def make_topology(eager_threshold: float = 16 * 1024,
                  latency: float = 10e-6,
                  bandwidth: float = 100e6) -> ClusterTopology:
    link = LinkModel(name="test", latency=latency, bandwidth=bandwidth,
                     eager_threshold=eager_threshold,
                     send_overhead=1e-6, recv_overhead=2e-6)
    return ClusterTopology(name="test-cluster", processors_per_node=1, inter_node=link)


@pytest.fixture
def engine() -> ClusterEngine:
    return ClusterEngine(make_topology())


class TestBasicSendRecv:
    def test_payload_is_delivered(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.send({"value": 41}, dest=1, tag=5)
                return None
            data = yield comm.recv(source=0, tag=5)
            return data["value"] + 1

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == 42

    def test_numpy_payload_roundtrip(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(np.arange(10.0), dest=1)
                return None
            data = yield comm.recv(source=0)
            return float(data.sum())

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == pytest.approx(45.0)

    def test_receive_time_includes_wire_latency(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=8)
            else:
                yield comm.recv(source=0)
            return None

        result = engine.run(program, nranks=2)
        receiver = result.rank_result(1)
        link = engine.topology.inter_node
        expected_min = link.latency
        assert receiver.finish_time >= expected_min

    def test_compute_advances_clock(self, engine):
        def program(comm):
            yield comm.compute(1.5e-3)
            return None

        result = engine.run(program, nranks=1)
        assert result.elapsed_time == pytest.approx(1.5e-3)
        assert result.rank_result(0).compute_time == pytest.approx(1.5e-3)

    def test_now_reports_virtual_time(self, engine):
        def program(comm):
            before = yield comm.now()
            yield comm.compute(2e-3)
            after = yield comm.now()
            return after - before

        result = engine.run(program, nranks=1)
        assert result.return_values[0] == pytest.approx(2e-3)

    def test_fifo_ordering_same_tag(self, engine):
        """Messages between a pair with the same tag are non-overtaking."""
        def program(comm):
            if comm.rank == 0:
                for value in range(5):
                    yield comm.send(value, dest=1, tag=1)
                return None
            received = []
            for _ in range(5):
                received.append((yield comm.recv(source=0, tag=1)))
            return received

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == [0, 1, 2, 3, 4]

    def test_tag_selective_matching(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.send("a", dest=1, tag=10)
                yield comm.send("b", dest=1, tag=20)
                return None
            second = yield comm.recv(source=0, tag=20)
            first = yield comm.recv(source=0, tag=10)
            return (first, second)

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == ("a", "b")

    def test_any_source_receives_earliest_arrival(self, engine):
        def program(comm):
            if comm.rank == 0:
                got = []
                for _ in range(2):
                    got.append((yield comm.recv(source=comm.ANY_SOURCE, tag=3)))
                return got
            yield comm.compute(1e-3 * comm.rank)   # rank 1 sends before rank 2
            yield comm.send(comm.rank, dest=0, tag=3)
            return None

        result = engine.run(program, nranks=3)
        assert result.return_values[0] == [1, 2]

    def test_exchange_pattern_times_are_symmetric(self, engine):
        def program(comm):
            peer = 1 - comm.rank
            if comm.rank == 0:
                yield comm.send(b"x" * 100, dest=peer)
                yield comm.recv(source=peer)
            else:
                yield comm.recv(source=peer)
                yield comm.send(b"x" * 100, dest=peer)
            return None

        result = engine.run(program, nranks=2)
        assert result.rank_result(0).messages_sent == 1
        assert result.rank_result(0).messages_received == 1
        assert result.elapsed_time > 0


class TestRendezvousProtocol:
    def test_large_send_blocks_until_recv_posted(self):
        engine = ClusterEngine(make_topology(eager_threshold=1024))
        nbytes = 1 << 20
        recv_delay = 5e-3

        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=nbytes)
                finish = yield comm.now()
                return finish
            yield comm.compute(recv_delay)
            yield comm.recv(source=0)
            return None

        result = engine.run(program, nranks=2)
        # The sender cannot complete before the receiver posts at t=5ms.
        assert result.return_values[0] >= recv_delay

    def test_eager_send_completes_before_recv_posted(self):
        engine = ClusterEngine(make_topology(eager_threshold=1 << 22))
        recv_delay = 5e-3

        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=4096)
                finish = yield comm.now()
                return finish
            yield comm.compute(recv_delay)
            yield comm.recv(source=0)
            return None

        result = engine.run(program, nranks=2)
        assert result.return_values[0] < recv_delay


class TestNonBlocking:
    def test_isend_irecv_wait(self, engine):
        def program(comm):
            if comm.rank == 0:
                request = yield comm.isend(np.ones(4), dest=1, tag=2)
                yield comm.compute(1e-3)
                yield comm.wait(request)
                return None
            request = yield comm.irecv(source=0, tag=2)
            data = yield comm.wait(request)
            return float(data.sum())

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == pytest.approx(4.0)

    def test_waitall_returns_all_payloads(self, engine):
        def program(comm):
            if comm.rank == 0:
                for value in range(3):
                    yield comm.send(value, dest=1, tag=value)
                return None
            requests = []
            for tag in range(3):
                requests.append((yield comm.irecv(source=0, tag=tag)))
            payloads = yield comm.waitall(requests)
            return payloads

        result = engine.run(program, nranks=2)
        assert result.return_values[1] == [0, 1, 2]


class TestErrorsAndAccounting:
    def test_unmatched_recv_deadlocks(self, engine):
        def program(comm):
            if comm.rank == 1:
                yield comm.recv(source=0, tag=9)
            else:
                yield comm.compute(1e-6)
            return None

        with pytest.raises(DeadlockError) as excinfo:
            engine.run(program, nranks=2)
        assert 1 in excinfo.value.blocked_ranks

    def test_rank_exception_is_wrapped(self, engine):
        def program(comm):
            yield comm.compute(1e-6)
            raise ValueError("numerical blow-up")

        with pytest.raises(RankFailureError) as excinfo:
            engine.run(program, nranks=1)
        assert isinstance(excinfo.value.original, ValueError)

    def test_non_generator_program_rejected(self, engine):
        def program(comm):
            return 42

        with pytest.raises(SimulationError):
            engine.run(program, nranks=1)

    def test_invalid_rank_count(self, engine):
        def program(comm):
            yield comm.compute(0.0)

        with pytest.raises(SimulationError):
            engine.run(program, nranks=0)

    def test_traffic_statistics(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, nbytes=1000, tag=4)
            else:
                yield comm.recv(source=0, tag=4)
            return None

        result = engine.run(program, nranks=2)
        assert result.traffic.messages == 1
        assert result.traffic.bytes == 1000
        assert result.rank_result(0).bytes_sent == 1000
        assert result.rank_result(1).bytes_received == 1000

    def test_comm_time_accounted_for_waiting_receiver(self, engine):
        def program(comm):
            if comm.rank == 0:
                yield comm.compute(10e-3)
                yield comm.send(None, dest=1, nbytes=8)
            else:
                yield comm.recv(source=0)
            return None

        result = engine.run(program, nranks=2)
        receiver = result.rank_result(1)
        assert receiver.comm_time >= 10e-3

    def test_determinism_without_noise(self):
        def program(comm):
            peer = (comm.rank + 1) % comm.size
            yield comm.send(comm.rank, dest=peer, tag=0)
            value = yield comm.recv(source=comm.ANY_SOURCE, tag=0)
            yield comm.compute(units.usec(10) * (value + 1))
            return None

        times = set()
        for _ in range(3):
            engine = ClusterEngine(make_topology())
            result = engine.run(program, nranks=4)
            times.add(round(result.elapsed_time, 15))
        assert len(times) == 1
