"""Engine reuse across runs: the contract simulation plans depend on."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simmpi.engine import ClusterEngine
from repro.simnet.link import LinkModel
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology


def make_engine(**engine_kwargs) -> ClusterEngine:
    link = LinkModel(name="reuse", latency=5e-6, bandwidth=100e6,
                     eager_threshold=16 * 1024,
                     send_overhead=1e-6, recv_overhead=1e-6)
    topology = ClusterTopology(name="reuse-cluster", processors_per_node=2,
                               inter_node=link)
    return ClusterEngine(topology, **engine_kwargs)


def ring_program(comm, nbytes=1024.0, rounds=3):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    total = 0.0
    for _ in range(rounds):
        yield comm.compute(1e-4)
        if comm.rank % 2 == 0:
            yield comm.send(None, dest=right, tag=7, nbytes=nbytes)
            yield comm.recv(source=left, tag=7)
        else:
            yield comm.recv(source=left, tag=7)
            yield comm.send(None, dest=right, tag=7, nbytes=nbytes)
        total = yield comm.allreduce(1.0, op="sum")
    return total


def unmatched_send_program(comm):
    # Rank 0 posts a send nobody ever receives: the run deadlocks with a
    # _PendingSend left in the engine's unexpected queues.
    if comm.rank == 0:
        yield comm.send(None, dest=1, tag=99, nbytes=1e6)
        yield comm.recv(source=1, tag=1)
    else:
        yield comm.recv(source=0, tag=1)


class TestEngineReuse:
    def test_repeated_runs_identical(self):
        engine = make_engine()
        first = engine.run(ring_program, nranks=4)
        second = engine.run(ring_program, nranks=4)
        fresh = make_engine().run(ring_program, nranks=4)
        assert first.elapsed_time == second.elapsed_time == fresh.elapsed_time
        assert ([r.finish_time for r in first.ranks]
                == [r.finish_time for r in second.ranks])
        assert first.traffic.messages == second.traffic.messages

    def test_rank_count_may_change_between_runs(self):
        engine = make_engine()
        small = engine.run(ring_program, nranks=2)
        large = engine.run(ring_program, nranks=6)
        assert small.nranks == 2 and large.nranks == 6
        assert large.elapsed_time >= small.elapsed_time

    def test_failed_run_does_not_poison_the_next(self):
        engine = make_engine()
        with pytest.raises(DeadlockError):
            engine.run(unmatched_send_program, nranks=2)
        # The stale _PendingSend of the failed run must not be matchable by
        # (or corrupt) a subsequent run on the same engine.
        result = engine.run(ring_program, nranks=2)
        reference = make_engine().run(ring_program, nranks=2)
        assert result.elapsed_time == reference.elapsed_time
        assert result.traffic.messages == reference.traffic.messages

    def test_run_state_released_after_run(self):
        engine = make_engine()
        engine.run(ring_program, nranks=4)
        assert engine._states == []
        assert engine._unexpected == []
        assert engine._posted_recvs == []
        assert engine._collectives == {}
        assert engine._request_waiters == {}

    def test_reentrant_run_rejected(self):
        engine = make_engine()

        def nested(comm):
            if comm.rank == 0:
                engine.run(ring_program, nranks=2)
            yield comm.compute(1e-6)

        with pytest.raises((SimulationError, Exception)) as excinfo:
            engine.run(nested, nranks=2)
        assert "re-entrant" in str(excinfo.value)

    def test_noise_swap_between_runs(self):
        """A plan reseeds noise per run; same seed => same result."""
        engine = make_engine()
        engine.noise = NoiseModel(seed=42)
        noisy_a = engine.run(ring_program, nranks=4)
        engine.noise = NoiseModel(seed=42)
        noisy_b = engine.run(ring_program, nranks=4)
        engine.noise = NoiseModel(seed=43)
        other = engine.run(ring_program, nranks=4)
        assert noisy_a.elapsed_time == noisy_b.elapsed_time
        assert other.elapsed_time != noisy_a.elapsed_time
