"""Tests for operation descriptors and request handles."""

import numpy as np
import pytest

from repro.errors import CommunicatorError
from repro.simmpi.operations import Compute, ReduceOp
from repro.simmpi.request import Request


class TestReduceOpCombine:
    def test_scalar_sum(self):
        assert ReduceOp.SUM.combine([1.0, 2.0, 3.5]) == pytest.approx(6.5)

    def test_scalar_results_are_python_scalars(self):
        result = ReduceOp.MAX.combine([1.0, 2.0])
        assert isinstance(result, float)

    def test_array_combine_elementwise(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        np.testing.assert_allclose(ReduceOp.MAX.combine([a, b]), [3.0, 5.0])
        np.testing.assert_allclose(ReduceOp.MIN.combine([a, b]), [1.0, 2.0])
        np.testing.assert_allclose(ReduceOp.SUM.combine([a, b]), [4.0, 7.0])

    def test_scalar_broadcast_against_array(self):
        a = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(ReduceOp.SUM.combine([a, 1.0]), [2.0, 3.0, 4.0])

    def test_prod(self):
        assert ReduceOp.PROD.combine([2.0, 3.0, 4.0]) == pytest.approx(24.0)

    def test_empty_rejected(self):
        with pytest.raises(CommunicatorError):
            ReduceOp.MIN.combine([])


class TestComputeDescriptor:
    def test_negative_rejected(self):
        with pytest.raises(CommunicatorError):
            Compute(-1.0)

    def test_zero_allowed(self):
        assert Compute(0.0).seconds == 0.0


class TestRequest:
    def test_initially_incomplete(self):
        request = Request(kind="recv", rank=3)
        assert not request.complete
        assert request.rank == 3

    def test_mark_complete_records_time_and_payload(self):
        request = Request(kind="recv", rank=0)
        request.mark_complete(1.5, payload={"data": 7})
        assert request.complete
        assert request.completion_time == 1.5
        assert request.payload == {"data": 7}

    def test_mark_complete_without_payload_keeps_existing(self):
        request = Request(kind="send", rank=0, payload="original")
        request.mark_complete(2.0)
        assert request.payload == "original"

    def test_ids_are_unique(self):
        first = Request(kind="send", rank=0)
        second = Request(kind="send", rank=0)
        assert first.request_id != second.request_id
