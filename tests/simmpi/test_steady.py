"""Tests for the steady-state execution tier (repro.simmpi.steady).

The tier's contract is *bit-identical or refuse*: every accepted trace
resolves to exactly the replay/engine result, and every precondition
failure raises :class:`~repro.simmpi.steady.SteadyStateError` with a
reason.  The synthetic programs below use dyadic durations (powers of
two and their small integer multiples) so the exactness precondition
holds by construction; the non-dyadic and noisy variants check the loud
refusals.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machines.presets import get_machine
from repro.simmpi.engine import ClusterEngine
from repro.simmpi.steady import (
    MIN_REPEATS,
    SteadyStateError,
    describe_steady,
    detect_period,
    steady_replay,
)
from repro.simmpi.trace import TraceRecorder
from repro.simnet.link import LinkModel
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology
from repro.sweep3d.input import standard_deck


def result_key(sim):
    """Every observable of a simulation result (bitwise comparison)."""
    return (sim.elapsed_time,
            tuple((r.finish_time, r.compute_time, r.comm_time,
                   r.messages_sent, r.bytes_sent, r.messages_received,
                   r.bytes_received, r.return_value) for r in sim.ranks),
            sim.traffic.messages, sim.traffic.bytes,
            sim.traffic.intra_node_messages, sim.traffic.inter_node_messages,
            tuple(sorted(sim.traffic.by_tag.items())))


@pytest.fixture(scope="module")
def topology():
    # Every timing parameter is dyadic, so modelled durations are exact
    # integer multiples of a power-of-two quantum (steady-eligible).
    link = LinkModel(name="dyadic", latency=2.0**-17, bandwidth=2.0**27,
                     eager_threshold=1024, send_overhead=2.0**-19,
                     recv_overhead=2.0**-19, per_byte_cpu=2.0**-32)
    return ClusterTopology(name="dyadic-cluster", processors_per_node=2,
                           inter_node=link)


def ping_pong_loop(iterations, compute=2.0**-10, nbytes=256,
                   reply_nbytes=512):
    """A two-rank loop whose body repeats bit-identically."""
    def program(comm):
        peer = 1 - comm.rank
        for _ in range(iterations):
            yield comm.compute(compute * (comm.rank + 1))
            if comm.rank == 0:
                yield comm.send(None, dest=peer, tag=1, nbytes=nbytes)
                yield comm.recv(source=peer, tag=2)
            else:
                yield comm.recv(source=peer, tag=1)
                yield comm.send(None, dest=peer, tag=2, nbytes=reply_nbytes)
    return program


def record(topology, program, nranks=2):
    return TraceRecorder(topology).record(program, nranks)


class TestPeriodDetector:
    def test_detects_the_loop_body(self, topology):
        trace = record(topology, ping_pong_loop(12))
        info = detect_period(trace)
        assert info.periodic
        # One loop iteration: 2 computes + 2 sends + 2 matches.
        assert info.period == 6
        assert info.sends_per_period == 2
        assert info.warmup + info.repeats * info.period + info.drain \
            == trace.n_events
        assert info.repeats >= MIN_REPEATS
        assert "periodic" in info.describe()
        assert "2 send(s)/period" in info.describe()

    def test_aperiodic_durations_refuse(self, topology):
        def program(comm):
            for index in range(12):
                # The duration changes every iteration: no repeating
                # suffix exists at any candidate period.
                yield comm.compute(2.0**-10 * (index + 1))

        info = detect_period(record(topology, program, nranks=1))
        assert not info.periodic
        assert "aperiodic" in info.describe()

    def test_too_few_repetitions_refuse(self, topology):
        trace = record(topology, ping_pong_loop(MIN_REPEATS - 2))
        info = detect_period(trace)
        assert not info.periodic
        assert f">= {MIN_REPEATS} repetitions" in info.reason

    def test_changed_message_size_breaks_the_period(self, topology):
        def program(comm):
            peer = 1 - comm.rank
            for index in range(12):
                # The payload grows each iteration: the event signature
                # (which hashes nbytes) never repeats.
                nbytes = 64 * (index + 1)
                if comm.rank == 0:
                    yield comm.send(None, dest=peer, tag=1, nbytes=nbytes)
                else:
                    yield comm.recv(source=peer, tag=1)
                yield comm.compute(2.0**-10)

        assert not detect_period(record(topology, program)).periodic

    def test_describe_steady_reports_eligibility(self, topology):
        trace = record(topology, ping_pong_loop(12))
        assert "steady-eligible" in describe_steady(trace)
        assert "steady-eligible" in trace.describe()

    def test_describe_steady_reports_continuous_timebase(self, topology):
        trace = record(topology, ping_pong_loop(12, compute=1e-3))
        assert "steady refuses" in describe_steady(trace)


class TestBitIdentity:
    def assert_steady_matches(self, topology, program, nranks=2):
        trace = record(topology, program, nranks)
        steady = steady_replay(trace)
        assert result_key(steady) == result_key(trace.replay())
        reference = ClusterEngine(topology).run(program, nranks)
        assert result_key(steady) == result_key(reference)
        assert trace.steady_replays == 1

    def test_eager_ping_pong(self, topology):
        self.assert_steady_matches(topology, ping_pong_loop(12))

    def test_rendezvous_messages(self, topology):
        # 1 MiB >> the 1 KiB eager threshold: rendez-vous protocol.
        self.assert_steady_matches(
            topology, ping_pong_loop(10, nbytes=2**20, reply_nbytes=2**20))

    def test_mixed_protocols_and_collectives(self, topology):
        def program(comm):
            peer = 1 - comm.rank
            for _ in range(14):
                yield comm.compute(2.0**-11 * (comm.rank + 1))
                if comm.rank == 0:
                    yield comm.send(None, dest=peer, tag=1, nbytes=256)
                    yield comm.recv(source=peer, tag=2)
                    yield comm.send(None, dest=peer, tag=3, nbytes=2**20)
                else:
                    yield comm.recv(source=peer, tag=1)
                    yield comm.send(None, dest=peer, tag=2, nbytes=512)
                    yield comm.recv(source=peer, tag=3)
                yield comm.allreduce(float(comm.rank), op="max")

        self.assert_steady_matches(topology, program)

    def test_ring_with_collectives(self, topology):
        def program(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for _ in range(15):
                yield comm.compute(2.0**-11 * (comm.rank + 1))
                yield comm.send(None, dest=nxt, tag=1, nbytes=64)   # eager
                yield comm.recv(source=prv, tag=1)
                yield comm.allreduce(float(comm.rank), op="max")

        self.assert_steady_matches(topology, program, nranks=3)

    def test_single_rank_compute_loop(self, topology):
        def program(comm):
            for _ in range(8):
                yield comm.compute(2.0**-9)
                yield comm.allreduce(1.0, op="sum")

        self.assert_steady_matches(topology, program, nranks=1)

    def test_warmup_and_drain_are_replayed(self, topology):
        def program(comm):
            peer = 1 - comm.rank
            yield comm.compute(2.0**-8)            # warm-up, never repeats
            for _ in range(10):
                yield comm.compute(2.0**-10 * (comm.rank + 1))
                if comm.rank == 0:
                    yield comm.send(None, dest=peer, tag=1, nbytes=256)
                    yield comm.recv(source=peer, tag=2)
                else:
                    yield comm.recv(source=peer, tag=1)
                    yield comm.send(None, dest=peer, tag=2, nbytes=512)
            # A partial repetition of the loop body: the detector is
            # suffix-periodic, so the drain must look like the body's
            # prefix (a unique epilogue would make the trace aperiodic).
            yield comm.compute(2.0**-10 * (comm.rank + 1))

        trace = record(topology, program)
        info = detect_period(trace)
        assert info.periodic
        assert info.warmup > 0
        assert info.drain > 0
        self.assert_steady_matches(topology, program)

    @settings(max_examples=12, deadline=None)
    @given(iterations=st.integers(min_value=15, max_value=24),
           compute_exp=st.integers(min_value=-14, max_value=-8),
           log_nbytes=st.integers(min_value=6, max_value=21),
           nranks=st.integers(min_value=1, max_value=3))
    def test_property_steady_equals_replay_and_engine(
            self, topology, iterations, compute_exp, log_nbytes, nranks):
        if nranks == 3 and 2**log_nbytes > 1024:
            # An odd-count ring of rendez-vous exchanges never settles
            # into a periodic capture order: the tier refuses it (covered
            # by the refusal tests), so the bit-identity property keeps
            # to the accepted shapes.
            log_nbytes = 9

        def program(comm):
            nxt = (comm.rank + 1) % comm.size
            prv = (comm.rank - 1) % comm.size
            for _ in range(iterations):
                yield comm.compute(2.0**compute_exp * (comm.rank + 1))
                if comm.size > 1:
                    # Even/odd ordering: a ring of blocking rendez-vous
                    # sends would deadlock.
                    if comm.rank % 2 == 0:
                        yield comm.send(None, dest=nxt, tag=1,
                                        nbytes=2**log_nbytes)
                        yield comm.recv(source=prv, tag=1)
                    else:
                        yield comm.recv(source=prv, tag=1)
                        yield comm.send(None, dest=nxt, tag=1,
                                        nbytes=2**log_nbytes)
                yield comm.allreduce(float(comm.rank), op="sum")

        trace = record(topology, program, nranks)
        steady = steady_replay(trace)
        assert result_key(steady) == result_key(trace.replay())
        assert result_key(steady) == \
            result_key(ClusterEngine(topology).run(program, nranks))


class TestRefusals:
    def test_noise_refused(self, topology):
        trace = record(topology, ping_pong_loop(12))
        with pytest.raises(SteadyStateError, match="noise"):
            steady_replay(trace, NoiseModel(seed=1))

    def test_disabled_noise_accepted(self, topology):
        trace = record(topology, ping_pong_loop(12))
        steady = steady_replay(trace, NoiseModel.disabled())
        assert result_key(steady) == result_key(trace.replay())

    def test_aperiodic_trace_refused(self, topology):
        def program(comm):
            for index in range(12):
                yield comm.compute(2.0**-10 * (index + 1))

        with pytest.raises(SteadyStateError, match="not periodic"):
            steady_replay(record(topology, program, nranks=1))

    def test_non_dyadic_durations_refused(self, topology):
        # 1e-3 is not an integer multiple of the trace's dyadic quantum.
        trace = record(topology, ping_pong_loop(12, compute=1e-3))
        with pytest.raises(SteadyStateError, match="dyadic"):
            steady_replay(trace)


class TestPlanIntegration:
    @pytest.fixture(scope="class")
    def quantized_machine(self):
        return get_machine("steady")       # hypothetical-opteron-myrinet-1ns

    @pytest.fixture(scope="class")
    def plan(self, quantized_machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=12)
        return quantized_machine.simulation_plan(deck, 2, 2)

    def test_steady_matches_replay_and_engine(self, plan):
        steady = plan.run(mode="steady")
        replay = plan.run(mode="replay")
        engine = plan.run(mode="engine")
        assert result_key(steady.simulation) == result_key(replay.simulation)
        assert result_key(steady.simulation) == result_key(engine.simulation)
        assert steady.iterations == engine.iterations

    def test_counters_and_last_execution(self, plan):
        before = plan.steadies
        plan.run(mode="steady")
        assert plan.steadies == before + 1
        assert plan.last_execution == "steady"
        assert plan.last_steady_refusal is None

    def test_auto_picks_steady_when_noise_free(self, plan):
        before = plan.steadies
        plan.run(mode="auto")
        assert plan.steadies == before + 1
        assert plan.last_execution == "steady"

    def test_auto_with_noise_skips_steady(self, quantized_machine, plan):
        before = plan.steadies
        run = plan.run(mode="auto", noise=quantized_machine.noise_model(3))
        assert plan.steadies == before
        assert plan.last_execution == "replay"
        assert run.elapsed_time > 0.0

    def test_steady_mode_with_noise_falls_back_loudly(self, quantized_machine,
                                                      plan):
        plan.run(mode="steady", noise=quantized_machine.noise_model(3))
        assert plan.last_execution == "replay"
        assert "noise" in plan.last_steady_refusal

    def test_continuous_machine_falls_back_loudly(self):
        machine = get_machine("hypothetical-opteron-myrinet")
        deck = standard_deck("validation", px=2, py=2, max_iterations=12)
        plan = machine.simulation_plan(deck, 2, 2)
        run = plan.run(mode="steady")
        assert plan.last_execution == "replay"
        assert "dyadic" in plan.last_steady_refusal
        assert run.elapsed_time > 0.0

    def test_steady_rejects_multi_sample_runs(self, plan):
        with pytest.raises(ValueError, match="batched trace replay"):
            plan.run(mode="steady", samples=4)

    def test_quantized_machine_stays_close_to_continuous(self):
        continuous = get_machine("hypothetical-opteron-myrinet")
        quantized = get_machine("steady")
        deck = standard_deck("validation", px=2, py=2, max_iterations=4)
        base = continuous.simulation_plan(deck, 2, 2).run(mode="replay")
        snapped = quantized.simulation_plan(deck, 2, 2).run(mode="steady")
        assert snapped.elapsed_time == pytest.approx(base.elapsed_time,
                                                     rel=1e-4)
