"""Tests for trace capture and max-plus replay (repro.simmpi.trace)."""

import pytest

from repro.errors import DeadlockError, TraceError
from repro.machines.presets import get_machine
from repro.simmpi.engine import ClusterEngine
from repro.simmpi.trace import (
    EV_COLLECTIVE,
    EV_COMPUTE,
    EV_MATCH,
    EV_SEND,
    TraceRecorder,
)
from repro.simnet.link import LinkModel
from repro.simnet.noise import NoiseModel
from repro.simnet.topology import ClusterTopology


@pytest.fixture(scope="module")
def topology():
    # Small eager threshold so both protocols are exercised.
    link = LinkModel(name="test", latency=10e-6, bandwidth=100e6,
                     eager_threshold=1024, send_overhead=2e-6,
                     recv_overhead=3e-6, per_byte_cpu=1e-9)
    return ClusterTopology(name="test-cluster", processors_per_node=2,
                           inter_node=link)


def result_key(sim):
    return (sim.elapsed_time,
            tuple((r.finish_time, r.compute_time, r.comm_time,
                   r.messages_sent, r.bytes_sent, r.messages_received,
                   r.bytes_received, r.return_value) for r in sim.ranks),
            sim.traffic.messages, sim.traffic.bytes,
            sim.traffic.intra_node_messages, sim.traffic.inter_node_messages,
            tuple(sorted(sim.traffic.by_tag.items())))


def assert_replay_matches_engine(topology, program, nranks, noises=(None,),
                                 program_args=()):
    trace = TraceRecorder(topology).record(program, nranks,
                                           program_args=program_args)
    engine = ClusterEngine(topology)
    for noise in noises:
        reference = engine.run(program, nranks, program_args=program_args,
                               noise=None if noise is None
                               else noise.reseeded(noise.seed))
        replayed = trace.replay(None if noise is None
                                else noise.reseeded(noise.seed))
        assert result_key(replayed) == result_key(reference)
    return trace


NOISES = (None,
          NoiseModel(seed=3),                                    # daemon on
          NoiseModel(seed=5, daemon_interval=0.0))               # jitter only


class TestPointToPoint:
    def test_eager_ping_pong(self, topology):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, tag=7, nbytes=256)
                reply = yield comm.recv(source=1, tag=8)
                return reply
            yield comm.recv(source=0, tag=7)
            yield comm.compute(1e-4)
            yield comm.send("pong", dest=0, tag=8, nbytes=256)
            return "done"

        trace = assert_replay_matches_engine(topology, program, 2,
                                             noises=NOISES)
        assert trace.n_messages == 2
        assert list(trace.event_kind).count(EV_SEND) == 2
        assert list(trace.event_kind).count(EV_MATCH) == 2

    def test_rendezvous_blocks_the_sender(self, topology):
        def program(comm):
            if comm.rank == 0:
                # 1 MB >> the 1 KB eager threshold: rendez-vous protocol.
                yield comm.send(None, dest=1, tag=1, nbytes=1e6)
            else:
                yield comm.compute(5e-3)       # receiver posts late
                yield comm.recv(source=0, tag=1)

        assert_replay_matches_engine(topology, program, 2, noises=NOISES)

    def test_rendezvous_recv_posted_first(self, topology):
        def program(comm):
            if comm.rank == 0:
                yield comm.compute(5e-3)       # sender posts late
                yield comm.send(None, dest=1, tag=1, nbytes=1e6)
            else:
                yield comm.recv(source=0, tag=1)

        assert_replay_matches_engine(topology, program, 2, noises=NOISES)

    def test_unexpected_messages_match_in_send_order(self, topology):
        def program(comm):
            if comm.rank == 0:
                for index in range(4):
                    yield comm.send(index, dest=1, tag=2, nbytes=64)
            else:
                yield comm.compute(1e-3)
                values = []
                for _ in range(4):
                    values.append((yield comm.recv(source=0, tag=2)))
                return values

        trace = assert_replay_matches_engine(topology, program, 2,
                                             noises=NOISES)
        assert trace.replay().ranks[1].return_value == [0, 1, 2, 3]


class TestCollectives:
    def test_allreduce_barrier_bcast(self, topology):
        def program(comm):
            total = yield comm.allreduce(float(comm.rank + 1), op="sum")
            yield comm.barrier()
            yield comm.compute(1e-4 * (comm.rank + 1))
            root_value = yield comm.bcast(comm.rank * 10 if comm.rank == 1
                                          else None, root=1)
            biggest = yield comm.allreduce(float(comm.rank), op="max")
            return (total, root_value, biggest)

        trace = assert_replay_matches_engine(topology, program, 4,
                                             noises=NOISES)
        assert trace.replay().ranks[0].return_value == (10.0, 10, 3.0)
        assert list(trace.event_kind).count(EV_COLLECTIVE) == 4

    def test_single_rank_collective(self, topology):
        def program(comm):
            yield comm.compute(1e-3)
            value = yield comm.allreduce(2.5, op="sum")
            return value

        trace = assert_replay_matches_engine(topology, program, 1,
                                             noises=NOISES)
        assert trace.replay().ranks[0].return_value == 2.5


class TestUnsupportedPatterns:
    def test_wildcard_recv_rejected(self, topology):
        def program(comm):
            if comm.rank == 0:
                yield comm.send(None, dest=1, tag=0, nbytes=8)
            else:
                yield comm.recv()              # ANY_SOURCE / ANY_TAG

        with pytest.raises(TraceError, match="wildcard"):
            TraceRecorder(topology).record(program, 2)

    def test_nonblocking_requests_rejected(self, topology):
        def program(comm):
            request = yield comm.isend(None, dest=(comm.rank + 1) % 2,
                                       nbytes=8)
            yield comm.wait(request)

        with pytest.raises(TraceError, match="unsupported|timing-dependent"):
            TraceRecorder(topology).record(program, 2)

    def test_clock_read_rejected(self, topology):
        def program(comm):
            start = yield comm.now()
            yield comm.compute(start + 1.0)

        with pytest.raises(TraceError):
            TraceRecorder(topology).record(program, 1)

    def test_execute_without_processor_rejected(self, topology):
        def program(comm):
            yield comm.execute(object())

        with pytest.raises(TraceError, match="processor"):
            TraceRecorder(topology).record(program, 1)

    def test_deadlock_detected_at_capture(self, topology):
        def program(comm):
            yield comm.recv(source=(comm.rank + 1) % 2, tag=0)

        with pytest.raises(DeadlockError):
            TraceRecorder(topology).record(program, 2)


class TestReplaySemantics:
    def test_repeated_replays_are_stable(self, topology):
        def program(comm):
            peer = 1 - comm.rank
            if comm.rank == 0:
                yield comm.send(None, dest=peer, tag=0, nbytes=128)
            else:
                yield comm.recv(source=peer, tag=0)
            yield comm.compute(1e-3)

        trace = TraceRecorder(topology).record(program, 2)
        noise = NoiseModel(seed=11)
        first = trace.replay(noise.reseeded(11))
        second = trace.replay(noise.reseeded(11))
        third = trace.replay(noise.reseeded(12))
        assert result_key(first) == result_key(second)
        assert result_key(first) != result_key(third)
        assert trace.replays == 3

    def test_event_table_shape(self, topology):
        def program(comm):
            yield comm.compute(1e-3)
            if comm.rank == 0:
                yield comm.send(None, dest=1, tag=9, nbytes=512)
            else:
                yield comm.recv(source=0, tag=9)
            yield comm.allreduce(1.0, op="sum")

        trace = TraceRecorder(topology).record(program, 2)
        kinds = list(trace.event_kind)
        assert kinds.count(EV_COMPUTE) == 2
        assert kinds.count(EV_SEND) == 1
        assert kinds.count(EV_MATCH) == 1
        assert kinds.count(EV_COLLECTIVE) == 1
        send_index = kinds.index(EV_SEND)
        assert trace.event_peer[send_index] == 1
        assert trace.event_tag[send_index] == 9
        assert trace.event_nbytes[send_index] == 512


class TestBatchReplay:
    """replay_batch sample s == replay at seeds[s], bit for bit."""

    @staticmethod
    def _wavefront_program(comm):
        # Mixed pattern: eager + rendez-vous point-to-point, compute,
        # and a collective — every wave kind the batch kernel handles.
        peer = (comm.rank + 1) % comm.size
        yield comm.compute(1e-3 * (comm.rank + 1))
        if comm.rank == 0:
            yield comm.send(None, dest=1, tag=1, nbytes=256)       # eager
            yield comm.send(None, dest=1, tag=2, nbytes=1e6)       # rdv
        elif comm.rank == 1:
            yield comm.recv(source=0, tag=1)
            yield comm.compute(2e-3)
            yield comm.recv(source=0, tag=2)
        yield comm.allreduce(float(peer), op="sum")

    def record(self, topology, nranks=3):
        return TraceRecorder(topology).record(self._wavefront_program, nranks)

    def assert_batch_matches_sequential(self, trace, noise, seeds):
        batch = trace.replay_batch(seeds, noise)
        assert batch.n_samples == len(seeds)
        for index, seed in enumerate(seeds):
            single = trace.replay(None if noise is None
                                  else noise.reseeded(seed))
            assert result_key(batch.sample(index)) == result_key(single)
            assert batch.elapsed[index] == single.elapsed_time

    def test_jitter_noise_matches_sequential_replays(self, topology):
        trace = self.record(topology)
        noise = NoiseModel(seed=0, daemon_interval=0.0)
        self.assert_batch_matches_sequential(trace, noise, [3, 99, 7, 3])

    def test_daemon_noise_matches_sequential_replays(self, topology):
        trace = self.record(topology)
        noise = NoiseModel(seed=0, daemon_interval=0.01,
                           daemon_duration=1e-3)
        self.assert_batch_matches_sequential(trace, noise, [0, 5, 12345])

    def test_no_noise_every_sample_is_the_modelled_run(self, topology):
        trace = self.record(topology)
        modelled = trace.replay()
        batch = trace.replay_batch([1, 2, 3])
        for index in range(3):
            assert result_key(batch.sample(index)) == result_key(modelled)
        assert batch.elapsed_std == 0.0
        assert batch.elapsed_ci95 == 0.0

    def test_summary_statistics(self, topology):
        trace = self.record(topology)
        noise = NoiseModel(seed=0, daemon_interval=0.0)
        batch = trace.replay_batch(list(range(16)), noise)
        summary = batch.summary()
        assert summary["samples"] == 16.0
        assert summary["elapsed_min"] <= summary["elapsed_mean"] \
            <= summary["elapsed_max"]
        assert summary["elapsed_std"] > 0.0
        assert summary["elapsed_ci95"] == pytest.approx(
            1.96 * summary["elapsed_std"] / 4.0)

    def test_single_sample_has_zero_spread(self, topology):
        trace = self.record(topology)
        batch = trace.replay_batch([7], NoiseModel(seed=7))
        assert batch.elapsed_std == 0.0
        assert batch.elapsed_ci95 == 0.0
        assert batch.elapsed_mean == batch.elapsed[0]

    def test_replays_counter_counts_samples(self, topology):
        trace = self.record(topology)
        before = trace.replays
        trace.replay_batch([1, 2, 3, 4, 5])
        assert trace.replays == before + 5

    def test_empty_seed_list_rejected(self, topology):
        with pytest.raises(ValueError, match="at least one seed"):
            self.record(topology).replay_batch([])


class TestPlanIntegration:
    @pytest.fixture(scope="class")
    def machine(self):
        return get_machine("pentium3-myrinet")

    @pytest.fixture(scope="class")
    def plan(self, machine):
        from repro.sweep3d.input import standard_deck
        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        return machine.simulation_plan(deck, 2, 2)

    def test_plan_replay_matches_engine(self, machine, plan):
        for seed in (None, 3, 99):
            # A NoiseModel carries generator state, so each run gets its
            # own freshly seeded instance (exactly how the backend seeds
            # per-scenario runs).
            def noise():
                return None if seed is None else machine.noise_model(seed)
            engine_run = plan.run(noise=noise(), mode="engine")
            replay_run = plan.run(noise=noise(), mode="replay")
            assert result_key(replay_run.simulation) == \
                result_key(engine_run.simulation)
            assert replay_run.error_history == engine_run.error_history
            assert replay_run.iterations == engine_run.iterations

    def test_auto_mode_replays_modelled_plans(self, plan):
        before = plan.replays
        plan.run(mode="auto")
        assert plan.replays == before + 1

    def test_numeric_plan_refuses_replay(self, machine):
        from repro.sweep3d.input import standard_deck
        deck = standard_deck("mini", px=1, py=2, max_iterations=1)
        plan = machine.simulation_plan(deck, 1, 2, numeric=True)
        with pytest.raises(TraceError, match="numeric"):
            plan.compile_trace()
        with pytest.raises(TraceError):
            plan.run(mode="replay")
        before = plan.replays
        auto = plan.run(mode="auto")           # falls back to the engine
        assert plan.replays == before
        assert auto.global_flux() is not None

    def test_unknown_mode_rejected(self, plan):
        with pytest.raises(ValueError, match="unknown simulation mode"):
            plan.run(mode="turbo")

    def test_plan_run_does_not_mutate_engine_noise(self, machine, plan):
        """Regression: per-run noise must not leak into the shared engine."""
        default_noise = plan.engine.noise
        plan.run(noise=machine.noise_model(5), mode="engine")
        assert plan.engine.noise is default_noise
        assert plan.engine.noise.is_disabled()
