"""Tests for the persistent compiled-trace cache (repro.simmpi.tracecache).

The cache must be byte-exact (a hit replays bit-identically to the
capture that stored it), verified on read (corrupt/foreign/stale entries
are misses, never errors) and safe to share: across plans, across
pickled multiprocessing workers and across processes.
"""

import pickle

import numpy as np
import pytest

from repro.machines.presets import get_machine
from repro.simmpi.tracecache import TraceDiskCache, trace_cache_for
from repro.simnet.noise import NoiseModel
from repro.sweep3d.driver import SimulationPlan
from repro.sweep3d.input import Sweep3DInput


@pytest.fixture(scope="module")
def machine():
    return get_machine("steady")


@pytest.fixture(scope="module")
def plan_parts(machine):
    deck = Sweep3DInput(it=10, jt=10, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=20)
    plan = SimulationPlan(deck, 2, 2, machine.topology,
                          processor=machine.processor)
    return plan, plan.compile_trace()


def test_roundtrip_is_byte_exact(tmp_path, plan_parts):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    key = plan.trace_fingerprint()
    cache.put(key, trace)
    loaded = cache.get_trace(key)
    assert loaded is not None
    for column in ("event_kind", "event_rank", "event_slot", "event_aux",
                   "event_peer", "event_tag", "event_nbytes"):
        got, want = getattr(loaded, column), getattr(trace, column)
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)
    assert loaded._traffic == trace._traffic
    assert loaded._return_values == trace._return_values
    noise = NoiseModel(seed=3)
    assert loaded.replay(noise.reseeded(3)).elapsed_time \
        == trace.replay(noise.reseeded(3)).elapsed_time


def test_miss_and_stats_accounting(tmp_path, plan_parts):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    key = plan.trace_fingerprint()
    assert cache.get(key) is None
    cache.put_trace(key, trace)
    assert cache.get(key) is not None
    snapshot = cache.stats_snapshot()
    assert (snapshot.hits, snapshot.misses, snapshot.stores) == (1, 1, 1)
    assert len(cache) == 1
    assert cache.total_bytes() > 0


def test_corrupt_entry_is_a_miss(tmp_path, plan_parts):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    key = plan.trace_fingerprint()
    cache.put(key, trace)
    (entry,) = cache.entries()
    entry.write_bytes(b"not an npz archive")
    assert cache.get(key) is None
    truncated = TraceDiskCache(tmp_path)
    cache.put(key, trace)
    (entry,) = cache.entries()
    entry.write_bytes(entry.read_bytes()[:40])
    assert truncated.get(key) is None


def test_foreign_key_is_a_miss(tmp_path, plan_parts, machine):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    cache.put(plan.trace_fingerprint(), trace)
    other_deck = Sweep3DInput(it=10, jt=10, kt=8, mk=4, mmi=3, sn=6,
                              max_iterations=24)
    other = SimulationPlan(other_deck, 2, 2, machine.topology,
                           processor=machine.processor)
    assert cache.get(other.trace_fingerprint()) is None


def test_prune_and_clear(tmp_path, plan_parts):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    cache.put(plan.trace_fingerprint(), trace)
    cache.put(plan.trace_fingerprint() + ("other",), trace)
    assert len(cache) == 2
    result = cache.prune(max_entries=1)
    assert result.removed == 1
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0


def test_cache_pickles_for_worker_fanout(tmp_path, plan_parts):
    plan, trace = plan_parts
    cache = TraceDiskCache(tmp_path)
    key = plan.trace_fingerprint()
    cache.put(key, trace)
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.path == cache.path
    assert clone.get(key) is not None


def test_trace_cache_for_coercion(tmp_path):
    cache = trace_cache_for(tmp_path)
    assert isinstance(cache, TraceDiskCache)
    assert trace_cache_for(cache) is cache


def test_fingerprint_ignores_machine_name_and_noise(machine):
    deck = Sweep3DInput(it=10, jt=10, kt=8, mk=4, mmi=3, sn=6,
                        max_iterations=20)
    plan = SimulationPlan(deck, 2, 2, machine.topology,
                          processor=machine.processor)
    key = plan.trace_fingerprint()
    assert machine.topology.name not in repr(key)
    assert key == plan.trace_fingerprint()  # stable
    other = SimulationPlan(deck, 2, 2, machine.topology,
                           processor=machine.processor,
                           convergence_collectives=False)
    assert other.trace_fingerprint() != key
