"""Tests for the link cost model."""

import pytest

from repro import units
from repro.errors import NetworkConfigError
from repro.simnet.link import LinkModel
from repro.simnet.presets import gigabit_ethernet_link, myrinet2000_link, numalink4_link


@pytest.fixture
def link() -> LinkModel:
    return LinkModel(name="test", latency=units.usec(10), bandwidth=units.mbytes_per_s(100),
                     eager_threshold=1024, eager_bandwidth=units.mbytes_per_s(80),
                     rendezvous_latency=units.usec(20),
                     send_overhead=units.usec(2), recv_overhead=units.usec(3),
                     per_byte_cpu=1e-9)


class TestLinkModel:
    def test_validation(self):
        with pytest.raises(NetworkConfigError):
            LinkModel("bad", latency=-1.0, bandwidth=1e6)
        with pytest.raises(NetworkConfigError):
            LinkModel("bad", latency=1e-6, bandwidth=0.0)
        with pytest.raises(NetworkConfigError):
            LinkModel("bad", latency=1e-6, bandwidth=1e6, send_overhead=-1e-6)

    def test_eager_threshold(self, link):
        assert link.is_eager(512)
        assert link.is_eager(1024)
        assert not link.is_eager(1025)

    def test_wire_time_monotone(self, link):
        sizes = [0, 128, 1024, 2048, 65536, 1 << 20]
        times = [link.wire_time(size) for size in sizes]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_piecewise_formula(self, link):
        # Below the threshold: eager path (latency + size / eager bandwidth).
        assert link.wire_time(1024) == pytest.approx(
            link.latency + 1024 / link.eager_bandwidth)
        # Above the threshold: rendezvous handshake + full-bandwidth transfer.
        assert link.wire_time(1025) == pytest.approx(
            link.latency + link.rendezvous_latency + 1025 / link.bandwidth)
        # The protocol switch is visibly discontinuous (the paper's breakpoint A).
        assert link.wire_time(1025) > link.wire_time(1024)

    def test_zero_byte_message_costs_latency(self, link):
        assert link.wire_time(0) == pytest.approx(link.latency)

    def test_negative_size_rejected(self, link):
        with pytest.raises(NetworkConfigError):
            link.wire_time(-1)

    def test_cpu_overheads(self, link):
        assert link.sender_cpu_time(1000) == pytest.approx(units.usec(2) + 1000e-9)
        assert link.receiver_cpu_time(1000) == pytest.approx(units.usec(3) + 1000e-9)

    def test_pingpong_is_twice_one_way(self, link):
        assert link.ping_pong_time(4096) == pytest.approx(2 * link.one_way_time(4096))

    def test_bandwidth_dominates_large_messages(self, link):
        size = 10 * units.MIB
        expected = size / link.bandwidth
        assert link.wire_time(size) == pytest.approx(expected, rel=0.05)


class TestPresets:
    def test_relative_latencies(self):
        # NUMAlink < Myrinet < Gigabit Ethernet, as for the real interconnects.
        assert numalink4_link().latency < myrinet2000_link().latency < \
            gigabit_ethernet_link().latency

    def test_relative_bandwidths(self):
        assert numalink4_link().bandwidth > myrinet2000_link().bandwidth > \
            gigabit_ethernet_link().bandwidth

    def test_describe(self):
        assert "Myrinet" in myrinet2000_link().describe()
