"""Tests for the OS/network noise model."""

import numpy as np
import pytest

from repro.simnet.noise import NoiseModel


class TestNoiseModel:
    def test_disabled_noise_is_identity(self):
        noise = NoiseModel.disabled()
        assert noise.is_disabled()
        assert noise.perturb_compute(1.0) == 1.0
        assert noise.perturb_network(1e-5) == 1e-5

    def test_reproducible_with_same_seed(self):
        a = NoiseModel(seed=42)
        b = NoiseModel(seed=42)
        values_a = [a.perturb_compute(0.01) for _ in range(20)]
        values_b = [b.perturb_compute(0.01) for _ in range(20)]
        assert values_a == values_b

    def test_different_seeds_differ(self):
        a = NoiseModel(seed=1)
        b = NoiseModel(seed=2)
        assert [a.perturb_compute(0.01) for _ in range(5)] != \
            [b.perturb_compute(0.01) for _ in range(5)]

    def test_reseed_restarts_stream(self):
        noise = NoiseModel(seed=7)
        first = [noise.perturb_compute(0.01) for _ in range(5)]
        noise.reseed(7)
        second = [noise.perturb_compute(0.01) for _ in range(5)]
        assert first == second

    def test_zero_duration_untouched(self):
        noise = NoiseModel(seed=3)
        assert noise.perturb_compute(0.0) == 0.0
        assert noise.perturb_network(0.0) == 0.0

    def test_daemon_noise_adds_positive_bias(self):
        noise = NoiseModel(seed=11, compute_jitter=0.0,
                           daemon_interval=0.01, daemon_duration=1e-3)
        durations = np.array([noise.perturb_compute(0.1) for _ in range(200)])
        # Expected overhead is duration/interval = 10% of the block length.
        assert durations.mean() > 0.1
        assert durations.mean() == pytest.approx(0.11, rel=0.25)

    def test_jitter_is_small_and_centred(self):
        noise = NoiseModel(seed=5, compute_jitter=0.01,
                           daemon_interval=0.0, daemon_duration=0.0)
        values = np.array([noise.perturb_compute(1.0) for _ in range(500)])
        assert values.mean() == pytest.approx(1.0, rel=0.01)
        assert values.std() == pytest.approx(0.01, rel=0.5)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(compute_jitter=-0.1)


class TestBatchPerturbation:
    """perturb_batch_multi rows == reseeded single-seed perturb_batch."""

    durations = np.array([1e-3, 0.0, 5e-4, 2e-3, 1e-4, 0.0, 3e-3])
    kinds = np.array([NoiseModel.COMPUTE, NoiseModel.NETWORK,
                      NoiseModel.NETWORK, NoiseModel.COMPUTE,
                      NoiseModel.NETWORK, NoiseModel.COMPUTE,
                      NoiseModel.NETWORK])

    def assert_rows_match_single_seed(self, noise, seeds):
        batch = noise.perturb_batch_multi(self.durations, self.kinds, seeds)
        assert batch.shape == (len(seeds), len(self.durations))
        for row, seed in zip(batch, seeds):
            single = noise.reseeded(seed).perturb_batch(self.durations,
                                                        self.kinds)
            np.testing.assert_array_equal(row, single)

    def test_jitter_only_rows_match_single_seed(self):
        noise = NoiseModel(seed=0, daemon_interval=0.0)
        self.assert_rows_match_single_seed(noise, [3, 99, 2**31 - 1, 3])

    def test_daemon_rows_match_single_seed(self):
        noise = NoiseModel(seed=0, daemon_interval=0.01,
                           daemon_duration=1e-3)
        self.assert_rows_match_single_seed(noise, [0, 7, 12345])

    def test_rows_match_scalar_call_sequence(self):
        noise = NoiseModel(seed=0, daemon_interval=0.01, daemon_duration=1e-3)
        batch = noise.perturb_batch_multi(self.durations, self.kinds, [42])
        scalar = noise.reseeded(42)
        expected = [scalar.perturb_compute(d) if k == NoiseModel.COMPUTE
                    else scalar.perturb_network(d)
                    for d, k in zip(self.durations, self.kinds)]
        np.testing.assert_array_equal(batch[0], np.array(expected))

    def test_disabled_noise_returns_broadcast_base(self):
        batch = NoiseModel.disabled().perturb_batch_multi(
            self.durations, self.kinds, [1, 2, 3])
        assert batch.shape == (3, len(self.durations))
        for row in batch:
            np.testing.assert_array_equal(row, self.durations)

    def test_all_consuming_fast_path(self):
        # Every duration positive and both sigmas > 0: the no-mask path.
        durations = np.full(6, 1e-3)
        kinds = np.array([NoiseModel.COMPUTE, NoiseModel.NETWORK] * 3)
        noise = NoiseModel(seed=9, daemon_interval=0.0)
        batch = noise.perturb_batch_multi(durations, kinds, [4, 5])
        for row, seed in zip(batch, [4, 5]):
            np.testing.assert_array_equal(
                row, noise.reseeded(seed).perturb_batch(durations, kinds))

    def test_empty_inputs(self):
        noise = NoiseModel(seed=1)
        empty = noise.perturb_batch_multi(np.empty(0), np.empty(0), [1, 2])
        assert empty.shape == (2, 0)
        none = noise.perturb_batch_multi(self.durations, self.kinds, [])
        assert none.shape == (0, len(self.durations))

    def test_shape_mismatch_rejected(self):
        noise = NoiseModel(seed=1)
        with pytest.raises(ValueError, match="same length"):
            noise.perturb_batch_multi(np.ones(3), np.ones(2), [1])


class TestSeedThreading:
    def test_reseeded_copy_restarts_stream(self):
        noise = NoiseModel(seed=7)
        original = [noise.perturb_compute(0.01) for _ in range(5)]
        copy = noise.reseeded(7)
        assert [copy.perturb_compute(0.01) for _ in range(5)] == original
        # The copy keeps every jitter parameter but owns its generator.
        assert copy.compute_jitter == noise.compute_jitter
        assert copy is not noise
        other = noise.reseeded(8)
        assert [other.perturb_compute(0.01) for _ in range(5)] != original

    def test_derive_seed_stable_and_sensitive(self):
        from repro.simnet.noise import derive_seed

        a = derive_seed("sweep3d-simulate", "pentium3", 100, 100, 50, 10, 3)
        assert a == derive_seed("sweep3d-simulate", "pentium3", 100, 100, 50, 10, 3)
        assert a != derive_seed("sweep3d-simulate", "pentium3", 100, 100, 50, 10, 4)
        assert a != derive_seed("sweep3d-simulate", "opteron", 100, 100, 50, 10, 3)
        assert 0 <= a < 2 ** 31

    def test_derive_seed_usable_as_noise_seed(self):
        from repro.simnet.noise import derive_seed

        seed = derive_seed("x", 1, 2)
        a = NoiseModel(seed=seed)
        b = NoiseModel(seed=seed)
        assert a.perturb_compute(0.01) == b.perturb_compute(0.01)
