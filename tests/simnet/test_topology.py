"""Tests for cluster topologies."""

import pytest

from repro.errors import NetworkConfigError
from repro.simnet.presets import (
    altix_topology,
    hypothetical_cluster_topology,
    interconnect_preset,
    opteron_cluster_topology,
    pentium3_cluster_topology,
)
from repro.simnet.topology import LinkUsageStats


class TestClusterTopology:
    def test_node_assignment_is_blocked(self, p3_topology):
        assert p3_topology.node_of(0) == 0
        assert p3_topology.node_of(1) == 0
        assert p3_topology.node_of(2) == 1
        assert p3_topology.node_of(3) == 1

    def test_same_node(self, p3_topology):
        assert p3_topology.same_node(0, 1)
        assert not p3_topology.same_node(1, 2)

    def test_link_selection(self, p3_topology):
        intra = p3_topology.link_for(0, 1)
        inter = p3_topology.link_for(0, 2)
        assert intra is p3_topology.intra_node
        assert inter is p3_topology.inter_node
        assert intra.latency < inter.latency

    def test_self_message_uses_intra_link(self, p3_topology):
        assert p3_topology.link_for(3, 3) is p3_topology.intra_node

    def test_rank_limit(self, p3_topology):
        assert p3_topology.rank_limit == 128
        p3_topology.validate_rank_count(128)
        with pytest.raises(NetworkConfigError):
            p3_topology.validate_rank_count(129)

    def test_nodes_required(self, p3_topology):
        assert p3_topology.nodes_required(1) == 1
        assert p3_topology.nodes_required(2) == 1
        assert p3_topology.nodes_required(3) == 2

    def test_invalid_rank(self, p3_topology):
        with pytest.raises(NetworkConfigError):
            p3_topology.node_of(-1)

    def test_altix_is_single_node(self):
        altix = altix_topology()
        assert altix.rank_limit == 56
        assert altix.same_node(0, 55)

    def test_opteron_cluster_capacity(self):
        assert opteron_cluster_topology().rank_limit == 32

    def test_hypothetical_hosts_8000(self):
        hypothetical = hypothetical_cluster_topology()
        hypothetical.validate_rank_count(8000)

    def test_interconnect_preset_lookup(self):
        assert interconnect_preset("myrinet2000").name == "Myrinet 2000"
        with pytest.raises(KeyError):
            interconnect_preset("infiniband-hdr")


class TestLinkUsageStats:
    def test_records_intra_and_inter(self, p3_topology):
        stats = LinkUsageStats()
        stats.record(p3_topology, 0, 1, 100.0, tag=7)
        stats.record(p3_topology, 0, 2, 200.0, tag=7)
        stats.record(p3_topology, 2, 3, 300.0, tag=9)
        assert stats.messages == 3
        assert stats.bytes == 600.0
        assert stats.intra_node_messages == 2
        assert stats.inter_node_messages == 1
        assert stats.by_tag == {7: 2, 9: 1}
