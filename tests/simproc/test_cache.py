"""Tests for the memory hierarchy model."""

import pytest

from repro.errors import ProcessorConfigError
from repro.simproc.cache import CacheLevel, MemoryHierarchy

KIB = 1024


def small_hierarchy(streaming_factor: float = 0.5) -> MemoryHierarchy:
    return MemoryHierarchy(
        levels=[CacheLevel("L1", 16 * KIB, 2.0, 64), CacheLevel("L2", 512 * KIB, 10.0, 64)],
        memory_access_cycles=100.0,
        streaming_factor=streaming_factor,
    )


class TestCacheLevel:
    def test_invalid_capacity(self):
        with pytest.raises(ProcessorConfigError):
            CacheLevel("L1", 0, 2.0)

    def test_negative_access_cycles(self):
        with pytest.raises(ProcessorConfigError):
            CacheLevel("L1", 1024, -1.0)

    def test_invalid_line(self):
        with pytest.raises(ProcessorConfigError):
            CacheLevel("L1", 1024, 1.0, line_bytes=0)


class TestMemoryHierarchy:
    def test_requires_levels(self):
        with pytest.raises(ProcessorConfigError):
            MemoryHierarchy(levels=[], memory_access_cycles=100.0)

    def test_levels_must_grow(self):
        with pytest.raises(ProcessorConfigError):
            MemoryHierarchy(
                levels=[CacheLevel("L1", 512 * KIB, 2.0), CacheLevel("L2", 16 * KIB, 10.0)],
                memory_access_cycles=100.0)

    def test_streaming_factor_bounds(self):
        with pytest.raises(ProcessorConfigError):
            small_hierarchy(streaming_factor=0.0)
        with pytest.raises(ProcessorConfigError):
            small_hierarchy(streaming_factor=1.5)

    def test_hit_fractions_sum_to_one(self):
        hierarchy = small_hierarchy()
        for working_set in (0, 1 * KIB, 100 * KIB, 10 * 1024 * KIB):
            fractions = hierarchy.hit_fractions(working_set)
            assert sum(f for _, f in fractions) == pytest.approx(1.0)

    def test_tiny_working_set_hits_l1(self):
        fractions = dict(small_hierarchy().hit_fractions(1 * KIB))
        assert fractions["L1"] == pytest.approx(1.0)
        assert fractions.get("memory", 0.0) == pytest.approx(0.0, abs=1e-12)

    def test_huge_working_set_mostly_memory(self):
        fractions = dict(small_hierarchy().hit_fractions(1024 * 1024 * KIB))
        assert fractions["memory"] > 0.99

    def test_average_access_cycles_monotone_in_working_set(self):
        hierarchy = small_hierarchy()
        sizes = [1 * KIB, 32 * KIB, 256 * KIB, 4096 * KIB, 65536 * KIB]
        costs = [hierarchy.average_access_cycles(size) for size in sizes]
        assert costs == sorted(costs)

    def test_stall_cycles_zero_for_in_cache_data(self):
        hierarchy = small_hierarchy()
        assert hierarchy.stall_cycles(1000, working_set_bytes=1 * KIB) == pytest.approx(0.0)

    def test_stall_cycles_positive_for_streaming(self):
        hierarchy = small_hierarchy()
        assert hierarchy.stall_cycles(1000, working_set_bytes=64 * 1024 * KIB) > 0

    def test_stall_cycles_scale_with_accesses(self):
        hierarchy = small_hierarchy()
        one = hierarchy.stall_cycles(1000, working_set_bytes=64 * 1024 * KIB)
        two = hierarchy.stall_cycles(2000, working_set_bytes=64 * 1024 * KIB)
        assert two == pytest.approx(2 * one)

    def test_negative_working_set_rejected(self):
        with pytest.raises(ProcessorConfigError):
            small_hierarchy().hit_fractions(-1.0)

    def test_describe_mentions_levels(self):
        text = small_hierarchy().describe()
        assert "L1" in text and "L2" in text and "mem" in text
