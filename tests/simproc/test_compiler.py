"""Tests for the compiler optimisation model."""

import pytest

from repro.errors import ProcessorConfigError
from repro.simproc.compiler import CompilerModel
from repro.simproc.opcodes import OpCategory, OperationMix


class TestCompilerModel:
    def test_unknown_level_rejected(self):
        with pytest.raises(ProcessorConfigError):
            CompilerModel(optimization_level="O9")

    def test_higher_levels_schedule_better(self):
        o0 = CompilerModel(optimization_level="O0", x87=False).schedule_factor()
        o1 = CompilerModel(optimization_level="O1", x87=False).schedule_factor()
        o3 = CompilerModel(optimization_level="O3", x87=False).schedule_factor()
        assert o3 < o1 < o0

    def test_x87_penalises_scheduling(self):
        plain = CompilerModel(optimization_level="O1", x87=False).schedule_factor()
        x87 = CompilerModel(optimization_level="O1", x87=True).schedule_factor()
        assert x87 > plain

    def test_bookkeeping_elimination(self):
        compiler = CompilerModel(optimization_level="O2", x87=False)
        mix = OperationMix({OpCategory.FADD: 10, OpCategory.INT: 10,
                            OpCategory.BRANCH: 4, OpCategory.LOOP: 2})
        optimised = compiler.optimise_mix(mix)
        # Floating point work is preserved ...
        assert optimised.count(OpCategory.FADD) == 10
        # ... while bookkeeping shrinks.
        assert optimised.count(OpCategory.INT) < 10
        assert optimised.count(OpCategory.BRANCH) < 4

    def test_o0_keeps_everything(self):
        compiler = CompilerModel(optimization_level="O0", x87=False)
        mix = OperationMix({OpCategory.INT: 10})
        assert compiler.optimise_mix(mix).count(OpCategory.INT) == 10

    def test_explicit_factors_override_defaults(self):
        compiler = CompilerModel(optimization_level="O1", x87=False,
                                 scheduling_gain=0.5, bookkeeping_eliminated=0.9)
        gain, eliminated = compiler.resolved_factors()
        assert gain == pytest.approx(0.5)
        assert eliminated == pytest.approx(0.9)

    def test_invalid_explicit_factors_rejected(self):
        with pytest.raises(ProcessorConfigError):
            CompilerModel(scheduling_gain=0.01)
        with pytest.raises(ProcessorConfigError):
            CompilerModel(bookkeeping_eliminated=1.0)

    def test_describe(self):
        text = CompilerModel(name="gcc-2.96", optimization_level="O1", x87=True).describe()
        assert "gcc-2.96" in text and "O1" in text and "x87" in text
