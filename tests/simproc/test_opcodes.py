"""Tests for operation mixes and opcode cost tables."""

import pytest

from repro.errors import ProcessorConfigError
from repro.simproc.opcodes import OpCategory, OpcodeCostTable, OperationMix, merge_mixes


class TestOpCategory:
    def test_from_pace_mnemonic(self):
        assert OpCategory.from_mnemonic("MFDG") is OpCategory.FMUL
        assert OpCategory.from_mnemonic("AFDG") is OpCategory.FADD
        assert OpCategory.from_mnemonic("IFBR") is OpCategory.BRANCH

    def test_from_category_name(self):
        assert OpCategory.from_mnemonic("fmul") is OpCategory.FMUL

    def test_unknown_mnemonic(self):
        with pytest.raises(KeyError):
            OpCategory.from_mnemonic("XYZW")

    def test_floating_point_set(self):
        fp = OpCategory.floating_point()
        assert OpCategory.FADD in fp and OpCategory.FMUL in fp and OpCategory.FDIV in fp
        assert OpCategory.LOAD not in fp

    def test_memory_set(self):
        assert set(OpCategory.memory()) == {OpCategory.LOAD, OpCategory.STORE}


class TestOperationMix:
    def test_flop_count(self):
        mix = OperationMix({OpCategory.FADD: 3, OpCategory.FMUL: 4, OpCategory.LOAD: 7})
        assert mix.flops == 7
        assert mix.memory_accesses == 7
        assert mix.total_operations == 14

    def test_addition(self):
        a = OperationMix({OpCategory.FADD: 1}, working_set_bytes=100)
        b = OperationMix({OpCategory.FADD: 2, OpCategory.FDIV: 1}, working_set_bytes=300)
        c = a + b
        assert c.count(OpCategory.FADD) == 3
        assert c.count(OpCategory.FDIV) == 1
        assert c.working_set_bytes == 300  # max of the two

    def test_scaling(self):
        mix = OperationMix({OpCategory.FMUL: 2}) * 10
        assert mix.count(OpCategory.FMUL) == 20

    def test_scaled_with_working_set(self):
        mix = OperationMix({OpCategory.FMUL: 2}, working_set_bytes=64)
        scaled = mix.scaled(5, working_set_bytes=1024)
        assert scaled.count(OpCategory.FMUL) == 10
        assert scaled.working_set_bytes == 1024

    def test_negative_count_rejected(self):
        with pytest.raises(ProcessorConfigError):
            OperationMix({OpCategory.FADD: -1})

    def test_negative_scale_rejected(self):
        with pytest.raises(ProcessorConfigError):
            OperationMix({OpCategory.FADD: 1}) * -2

    def test_from_mnemonics_roundtrip(self):
        mix = OperationMix.from_mnemonics({"MFDG": 19, "AFDG": 16, "DFDG": 1})
        assert mix.flops == 36
        assert mix.as_mnemonics() == {"AFDG": 16, "MFDG": 19, "DFDG": 1}

    def test_is_empty(self):
        assert OperationMix().is_empty()
        assert not OperationMix({OpCategory.INT: 1}).is_empty()

    def test_merge_mixes(self):
        mixes = [OperationMix({OpCategory.FADD: 1}) for _ in range(5)]
        assert merge_mixes(mixes).count(OpCategory.FADD) == 5


class TestOpcodeCostTable:
    def _table(self):
        return OpcodeCostTable.from_pairs({
            category: (4.0, 1.0) for category in OpCategory
        })

    def test_latency_vs_throughput(self):
        table = self._table()
        mix = OperationMix({OpCategory.FADD: 10})
        assert table.latency_cycles(mix) == 40
        assert table.throughput_cycles(mix) == 10

    def test_missing_category_rejected(self):
        with pytest.raises(ProcessorConfigError):
            OpcodeCostTable(latency={OpCategory.FADD: 1.0}, throughput={OpCategory.FADD: 1.0})

    def test_latency_below_throughput_rejected(self):
        pairs = {category: (4.0, 1.0) for category in OpCategory}
        pairs[OpCategory.FMUL] = (0.5, 1.0)
        with pytest.raises(ProcessorConfigError):
            OpcodeCostTable.from_pairs(pairs)

    def test_nonpositive_throughput_rejected(self):
        pairs = {category: (4.0, 1.0) for category in OpCategory}
        pairs[OpCategory.INT] = (1.0, 0.0)
        with pytest.raises(ProcessorConfigError):
            OpcodeCostTable.from_pairs(pairs)
