"""Tests for the processor model and its presets."""

import pytest

from repro.errors import ProcessorConfigError
from repro.simproc.opcodes import OpCategory, OperationMix
from repro.simproc.presets import (
    PROCESSOR_PRESETS,
    itanium2_1600,
    opteron_2000,
    pentium3_1400,
    processor_preset,
)
from repro.simproc.processor import SuperscalarModel
from repro.sweep3d.input import standard_deck
from repro.sweep3d.kernel import SweepKernel


@pytest.fixture(scope="module")
def sweep_mix():
    """The per-iteration mix of the 50^3-cells-per-processor problem."""
    kernel = SweepKernel(standard_deck("validation", 1, 1))
    return kernel.local_sweep_mix(50, 50)


class TestSuperscalarModel:
    def test_effective_parallelism(self):
        model = SuperscalarModel(issue_width=3, fp_pipelines=2, ilp_efficiency=0.5)
        assert model.effective_parallelism == pytest.approx(2.0)

    def test_bounds(self):
        with pytest.raises(ProcessorConfigError):
            SuperscalarModel(issue_width=0, fp_pipelines=1, ilp_efficiency=0.5)
        with pytest.raises(ProcessorConfigError):
            SuperscalarModel(issue_width=2, fp_pipelines=1, ilp_efficiency=1.5)


class TestProcessorModel:
    def test_empty_mix_costs_nothing(self, p3_processor):
        assert p3_processor.execute_time(OperationMix()) == 0.0

    def test_execute_time_scales_linearly(self, p3_processor, sweep_mix):
        one = p3_processor.execute_time(sweep_mix)
        two = p3_processor.execute_time(sweep_mix * 2)
        assert two == pytest.approx(2 * one, rel=1e-9)

    def test_achieved_rate_below_peak(self, p3_processor, sweep_mix):
        assert p3_processor.achieved_flop_rate(sweep_mix) < p3_processor.peak_flop_rate

    def test_seconds_per_flop_inverse_of_rate(self, p3_processor, sweep_mix):
        rate = p3_processor.achieved_flop_rate(sweep_mix)
        assert p3_processor.seconds_per_flop(sweep_mix) == pytest.approx(1.0 / rate)

    def test_legacy_differs_from_achieved(self, opteron_processor, sweep_mix):
        # The core of the paper's argument: the legacy per-opcode estimate is
        # far from the achieved behaviour on a modern superscalar processor.
        legacy = opteron_processor.legacy_opcode_time(sweep_mix)
        achieved = opteron_processor.execute_time(sweep_mix)
        assert abs(legacy - achieved) / achieved > 0.25

    def test_opcode_benchmark_covers_all_mnemonics(self, p3_processor):
        benchmark = p3_processor.opcode_benchmark()
        assert set(benchmark) == {c.value for c in OpCategory}
        assert all(value > 0 for value in benchmark.values())

    def test_scaled_clock(self, p3_processor, sweep_mix):
        faster = p3_processor.scaled_clock(1.5)
        assert faster.clock_hz == pytest.approx(1.5 * p3_processor.clock_hz)
        assert (faster.achieved_flop_rate(sweep_mix)
                > p3_processor.achieved_flop_rate(sweep_mix))

    def test_scaled_clock_invalid(self, p3_processor):
        with pytest.raises(ProcessorConfigError):
            p3_processor.scaled_clock(0.0)

    def test_working_set_affects_rate(self, opteron_processor):
        kernel = SweepKernel(standard_deck("validation", 1, 1))
        small = kernel.cell_mix().scaled(1000, working_set_bytes=32 * 1024)
        large = kernel.cell_mix().scaled(1000, working_set_bytes=64 * 1024 * 1024)
        # The paper: "This rate changes according to the problem size per
        # processor" — bigger working sets run slower.
        assert (opteron_processor.achieved_flop_rate(small)
                > opteron_processor.achieved_flop_rate(large))


class TestPresets:
    def test_registry(self):
        assert set(PROCESSOR_PRESETS) == {"pentium3", "opteron", "itanium2"}
        assert processor_preset("opteron").name.startswith("AMD")

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            processor_preset("cray1")

    @pytest.mark.parametrize("factory,paper_mflops,tolerance", [
        (pentium3_1400, 110.0, 0.10),
        (opteron_2000, 350.0, 0.10),
        (itanium2_1600, 225.0, 0.10),
    ])
    def test_achieved_rates_match_paper(self, factory, paper_mflops, tolerance, sweep_mix):
        """The calibrated presets achieve the paper's measured MFLOPS within 10%."""
        processor = factory()
        achieved = processor.achieved_flop_rate(sweep_mix) / 1e6
        assert achieved == pytest.approx(paper_mflops, rel=tolerance)

    def test_opteron_legacy_error_is_large(self, sweep_mix):
        """Reproduces the ~50% legacy-benchmark error highlighted for the Opteron."""
        processor = opteron_2000()
        ratio = processor.legacy_opcode_time(sweep_mix) / processor.execute_time(sweep_mix)
        assert 1.3 < ratio < 1.9

    def test_peak_rates_ordered(self):
        assert itanium2_1600().peak_flop_rate > opteron_2000().peak_flop_rate > \
            pentium3_1400().peak_flop_rate

    def test_describe(self):
        assert "GHz" in pentium3_1400().describe()
