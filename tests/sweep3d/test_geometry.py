"""Tests for grids, decomposition and octant ordering."""

import pytest

from repro.errors import DecompositionError
from repro.simmpi.cart import Cart2D
from repro.sweep3d.geometry import (
    Decomposition,
    GlobalGrid,
    octant_order,
    octant_pairs,
)


class TestGlobalGrid:
    def test_total_cells_and_volume(self):
        grid = GlobalGrid(10, 20, 30, dx=0.5, dy=1.0, dz=2.0)
        assert grid.total_cells == 6000
        assert grid.volume == pytest.approx(6000.0)

    def test_validation(self):
        with pytest.raises(DecompositionError):
            GlobalGrid(0, 1, 1)
        with pytest.raises(DecompositionError):
            GlobalGrid(1, 1, 1, dx=0.0)


class TestDecomposition:
    def test_even_split(self):
        decomp = Decomposition(GlobalGrid(100, 100, 50), Cart2D(2, 2))
        grids = decomp.local_grids()
        assert len(grids) == 4
        assert all(g.nx == 50 and g.ny == 50 and g.kt == 50 for g in grids)
        assert decomp.is_balanced()
        assert decomp.max_local_cells() == 50 * 50 * 50

    def test_offsets_tile_the_domain(self):
        decomp = Decomposition(GlobalGrid(10, 12, 3), Cart2D(2, 3))
        covered = set()
        for local in decomp.local_grids():
            for i in range(local.i0, local.i0 + local.nx):
                for j in range(local.j0, local.j0 + local.ny):
                    assert (i, j) not in covered
                    covered.add((i, j))
        assert len(covered) == 10 * 12

    def test_uneven_split_distributes_remainder(self):
        decomp = Decomposition(GlobalGrid(10, 9, 4), Cart2D(3, 2))
        nx_values = sorted({g.nx for g in decomp.local_grids()})
        ny_values = sorted({g.ny for g in decomp.local_grids()})
        assert nx_values == [3, 4]
        assert ny_values == [4, 5]
        assert not decomp.is_balanced()

    def test_too_many_processors(self):
        decomp = Decomposition(GlobalGrid(2, 2, 2), Cart2D(4, 1))
        with pytest.raises(DecompositionError):
            decomp.validate()

    def test_empty_local_grid_rejected(self):
        decomp = Decomposition(GlobalGrid(3, 3, 3), Cart2D(1, 4))
        with pytest.raises(DecompositionError):
            decomp.local_grids()


class TestOctants:
    def test_eight_octants_all_distinct(self):
        octants = octant_order()
        assert len(octants) == 8
        signs = {(o.idir, o.jdir, o.kdir) for o in octants}
        assert len(signs) == 8

    def test_pairs_share_corner(self):
        for first, second in octant_pairs():
            assert first.corner == second.corner
            assert first.kdir != second.kdir

    def test_four_distinct_corners(self):
        corners = [pair[0].corner for pair in octant_pairs()]
        assert len(set(corners)) == 4

    def test_indices_are_sequential(self):
        assert [o.index for o in octant_order()] == list(range(8))

    def test_invalid_direction_rejected(self):
        from repro.sweep3d.geometry import Octant
        with pytest.raises(DecompositionError):
            Octant(index=0, idir=0, jdir=1, kdir=1)
