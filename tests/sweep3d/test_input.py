"""Tests for SWEEP3D input decks."""

import pytest

from repro.errors import InputDeckError
from repro.sweep3d.input import (
    Sweep3DInput,
    format_input_deck,
    parse_input_deck,
    standard_deck,
)


class TestSweep3DInput:
    def test_defaults_match_paper_validation_setup(self):
        deck = Sweep3DInput()
        assert (deck.it, deck.jt, deck.kt) == (50, 50, 50)
        assert deck.mk == 10
        assert deck.mmi == 3
        assert deck.max_iterations == 12
        assert deck.sn == 6

    def test_derived_block_counts(self):
        deck = Sweep3DInput(kt=50, mk=10, mmi=3, sn=6)
        assert deck.n_k_blocks == 5
        assert deck.n_angle_blocks == 2
        assert deck.blocks_per_iteration == 8 * 5 * 2
        assert deck.angles_per_octant == 6

    def test_uneven_k_blocking_rounds_up(self):
        deck = Sweep3DInput(kt=55, mk=10)
        assert deck.n_k_blocks == 6

    def test_cells_per_processor(self):
        deck = Sweep3DInput(it=100, jt=100, kt=50)
        assert deck.cells_per_processor(2, 2) == 50 * 50 * 50

    def test_validation_errors(self):
        with pytest.raises(InputDeckError):
            Sweep3DInput(it=0)
        with pytest.raises(InputDeckError):
            Sweep3DInput(mk=0)
        with pytest.raises(InputDeckError):
            Sweep3DInput(epsi=0.0)
        with pytest.raises(InputDeckError):
            Sweep3DInput(sigma_s=2.0, sigma_t=1.0)   # non-convergent scattering ratio
        with pytest.raises(InputDeckError):
            Sweep3DInput(sn=5)

    def test_weak_scaled_constructor(self):
        deck = Sweep3DInput.weak_scaled((50, 50, 50), px=4, py=6)
        assert (deck.it, deck.jt, deck.kt) == (200, 300, 50)

    def test_scaled_to(self):
        deck = Sweep3DInput().scaled_to(3, 4, (5, 5, 100))
        assert (deck.it, deck.jt, deck.kt) == (15, 20, 100)

    def test_describe_mentions_parameters(self):
        text = Sweep3DInput(label="demo").describe()
        assert "demo" in text and "mk=10" in text


class TestStandardDecks:
    def test_validation_deck_weak_scaling(self):
        deck = standard_deck("validation", px=4, py=9)
        assert (deck.it, deck.jt, deck.kt) == (200, 450, 50)
        assert deck.mk == 10 and deck.max_iterations == 12

    def test_asci_decks_match_paper_cell_counts(self):
        # 8000 processors at 5x5x100 cells each = 20 million cells.
        deck20m = standard_deck("asci-20m", px=80, py=100)
        assert deck20m.total_cells == 20_000_000
        # 8000 processors at 25x25x200 cells each = 1 billion cells.
        deck1b = standard_deck("asci-1b", px=80, py=100)
        assert deck1b.total_cells == 1_000_000_000

    def test_mini_deck_is_small(self):
        deck = standard_deck("mini")
        assert deck.total_cells <= 1000

    def test_overrides(self):
        deck = standard_deck("validation", px=2, py=2, max_iterations=3)
        assert deck.max_iterations == 3

    def test_unknown_deck(self):
        with pytest.raises(InputDeckError):
            standard_deck("does-not-exist")


class TestTextDecks:
    def test_parse_minimal(self):
        deck = parse_input_deck("it = 100\njt = 100\nkt = 50\nmk = 10\n")
        assert deck.it == 100 and deck.mk == 10

    def test_comments_and_blank_lines(self):
        deck = parse_input_deck("""
        # problem size
        it = 20   ! global i cells
        jt = 20

        kt = 10
        """)
        assert (deck.it, deck.jt, deck.kt) == (20, 20, 10)

    def test_unknown_key_rejected(self):
        with pytest.raises(InputDeckError):
            parse_input_deck("unknown_key = 5")

    def test_bad_value_rejected(self):
        with pytest.raises(InputDeckError):
            parse_input_deck("it = lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(InputDeckError):
            parse_input_deck("it 100")

    def test_bool_and_string_values(self):
        deck = parse_input_deck("flux_fixup = false\nlabel = my-run\n")
        assert deck.flux_fixup is False
        assert deck.label == "my-run"

    def test_roundtrip(self):
        original = Sweep3DInput(it=32, jt=16, kt=8, mk=4, mmi=2, sn=4,
                                label="roundtrip", flux_fixup=False)
        parsed = parse_input_deck(format_input_deck(original))
        assert parsed == original
