"""Tests for the sweep kernel: characterisation and numeric block sweeps."""

import numpy as np
import pytest

from repro.errors import Sweep3DError
from repro.sweep3d.geometry import octant_order
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.kernel import SweepKernel


@pytest.fixture
def deck() -> Sweep3DInput:
    return Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=6, max_iterations=4)


@pytest.fixture
def kernel(deck) -> SweepKernel:
    return SweepKernel(deck)


class TestCharacterisation:
    def test_flops_per_cell_angle(self):
        assert SweepKernel.flops_per_cell_angle() == 36.0

    def test_cell_mix_composition(self):
        mix = SweepKernel.cell_mix()
        mnemonics = mix.as_mnemonics()
        assert mnemonics["AFDG"] == 16
        assert mnemonics["MFDG"] == 19
        assert mnemonics["DFDG"] == 1

    def test_block_mix_scales_with_cells(self):
        small = SweepKernel.block_mix(5, 5, 10, 3)
        large = SweepKernel.block_mix(10, 10, 10, 3)
        assert large.flops == pytest.approx(4 * small.flops)

    def test_local_sweep_mix_counts_all_angles(self, kernel, deck):
        mix = kernel.local_sweep_mix(deck.it, deck.jt)
        expected = (SweepKernel.flops_per_cell_angle() * deck.total_cells
                    * deck.quadrature().total_angles)
        assert mix.flops == pytest.approx(expected)

    def test_working_set_estimate(self):
        assert SweepKernel.working_set_bytes(50, 50, 50) == pytest.approx(
            6 * 50 ** 3 * 8)

    def test_auxiliary_mixes(self):
        assert SweepKernel.source_mix(1000).flops == pytest.approx(2000)
        assert SweepKernel.flux_err_mix(1000).flops == pytest.approx(4000)
        assert SweepKernel.balance_mix(1000).flops == pytest.approx(1000)


class TestKBlocks:
    def test_blocks_cover_all_planes(self, kernel, deck):
        blocks = kernel.k_blocks()
        planes = np.concatenate(blocks)
        np.testing.assert_array_equal(np.sort(planes), np.arange(deck.kt))

    def test_descending_octant_reverses_order(self, kernel):
        descending = next(o for o in octant_order() if o.kdir < 0)
        blocks = kernel.k_blocks_for_octant(descending)
        planes = np.concatenate(blocks)
        assert planes[0] == kernel.deck.kt - 1
        assert planes[-1] == 0

    def test_uneven_blocking(self):
        kernel = SweepKernel(Sweep3DInput(it=2, jt=2, kt=5, mk=2))
        sizes = [len(block) for block in kernel.k_blocks()]
        assert sizes == [2, 2, 1]


class TestNumericBlockSweep:
    def _sweep_single_cell(self, octant, q=1.0, sigma_t=1.0):
        deck = Sweep3DInput(it=1, jt=1, kt=1, mk=1, mmi=1, sn=2,
                            sigma_t=sigma_t, sigma_s=0.0, fixed_source=q,
                            flux_fixup=False)
        kernel = SweepKernel(deck)
        angles = deck.quadrature().angle_blocks(1)[0]
        phi = np.zeros((1, 1, 1))
        result = kernel.sweep_block(
            octant, angles, np.array([0]),
            q_block=np.full((1, 1, 1), q),
            psi_in_i=np.zeros((1, 1, 1)),
            psi_in_j=np.zeros((1, 1, 1)),
            psi_in_k=np.zeros((1, 1, 1)),
            phi_accum=phi)
        return deck, angles, phi, result

    def test_single_cell_diamond_difference(self):
        """Hand-checked diamond-difference update for one cell and one angle."""
        octant = octant_order()[0]
        deck, angles, phi, result = self._sweep_single_cell(octant, q=2.0, sigma_t=1.5)
        mu, eta, xi = angles.mu[0], angles.eta[0], angles.xi[0]
        denom = deck.sigma_t + 2 * mu + 2 * eta + 2 * xi
        psi_expected = 2.0 / denom
        assert phi[0, 0, 0] == pytest.approx(angles.weight[0] * psi_expected)
        np.testing.assert_allclose(result.psi_out_i, 2 * psi_expected, rtol=1e-12)
        np.testing.assert_allclose(result.psi_out_k, 2 * psi_expected, rtol=1e-12)

    def test_vacuum_inflow_no_source_gives_zero_flux(self):
        octant = octant_order()[0]
        _, _, phi, result = self._sweep_single_cell(octant, q=0.0)
        assert phi[0, 0, 0] == 0.0
        assert result.fixups == 0

    def test_shape_validation(self, kernel, deck):
        octant = octant_order()[0]
        angles = deck.quadrature().angle_blocks(deck.mmi)[0]
        k_planes = kernel.k_blocks()[0]
        with pytest.raises(Sweep3DError):
            kernel.sweep_block(octant, angles, k_planes,
                               q_block=np.zeros((deck.it, deck.jt, deck.kt)),
                               psi_in_i=np.zeros((1, 1, 1)),
                               psi_in_j=np.zeros((deck.it, len(k_planes), angles.n_angles)),
                               psi_in_k=np.zeros((deck.it, deck.jt, angles.n_angles)),
                               phi_accum=np.zeros((deck.it, deck.jt, deck.kt)))

    def test_fixup_prevents_negative_outflow(self):
        """A strongly absorbing cell with a large incoming flux triggers the fixup."""
        deck = Sweep3DInput(it=1, jt=1, kt=1, mk=1, mmi=1, sn=2,
                            sigma_t=50.0, sigma_s=0.0, fixed_source=0.0,
                            flux_fixup=True)
        kernel = SweepKernel(deck)
        octant = octant_order()[0]
        angles = deck.quadrature().angle_blocks(1)[0]
        phi = np.zeros((1, 1, 1))
        result = kernel.sweep_block(
            octant, angles, np.array([0]),
            q_block=np.zeros((1, 1, 1)),
            psi_in_i=np.full((1, 1, 1), 10.0),
            psi_in_j=np.zeros((1, 1, 1)),
            psi_in_k=np.zeros((1, 1, 1)),
            phi_accum=phi)
        assert result.fixups > 0
        assert (result.psi_out_i >= 0).all()
        assert (result.psi_out_j >= 0).all()
        assert (result.psi_out_k >= 0).all()

    def test_cells_swept_counter(self, kernel, deck):
        octant = octant_order()[0]
        angles = deck.quadrature().angle_blocks(deck.mmi)[0]
        k_planes = kernel.k_blocks()[0]
        na = angles.n_angles
        nk = len(k_planes)
        kernel.sweep_block(octant, angles, k_planes,
                           q_block=np.ones((deck.it, deck.jt, deck.kt)),
                           psi_in_i=np.zeros((deck.jt, nk, na)),
                           psi_in_j=np.zeros((deck.it, nk, na)),
                           psi_in_k=np.zeros((deck.it, deck.jt, na)),
                           phi_accum=np.zeros((deck.it, deck.jt, deck.kt)))
        assert kernel.cells_swept == deck.it * deck.jt * nk
