"""Tests for the KBA parallel solver on the simulated cluster."""

import pytest

from repro.errors import DecompositionError
from repro.simnet.noise import NoiseModel
from repro.sweep3d.driver import run_parallel_sweep, run_serial_sweep
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.verification import max_relative_difference, particle_balance


@pytest.fixture(scope="module")
def numeric_deck() -> Sweep3DInput:
    return Sweep3DInput(it=8, jt=8, kt=6, mk=3, mmi=2, sn=4,
                        epsi=1e-6, max_iterations=10)


@pytest.fixture(scope="module")
def serial_reference(numeric_deck):
    return run_serial_sweep(numeric_deck)


class TestNumericEquivalence:
    @pytest.mark.parametrize("px,py", [(1, 1), (2, 2), (2, 4), (4, 2), (1, 4)])
    def test_parallel_matches_serial(self, numeric_deck, serial_reference,
                                     p3_machine, px, py):
        """The 2-D pipelined decomposition must not change the flux field."""
        run = run_parallel_sweep(numeric_deck, px, py,
                                 topology=p3_machine.topology,
                                 processor=p3_machine.processor,
                                 numeric=True)
        phi = run.global_flux()
        assert phi is not None
        assert max_relative_difference(phi, serial_reference.phi) < 1e-12

    def test_parallel_iteration_count_matches_serial(self, numeric_deck,
                                                     serial_reference, p3_machine):
        run = run_parallel_sweep(numeric_deck, 2, 2,
                                 topology=p3_machine.topology,
                                 processor=p3_machine.processor,
                                 numeric=True)
        assert run.iterations == serial_reference.iterations

    def test_parallel_balance(self, numeric_deck, p3_machine):
        run = run_parallel_sweep(numeric_deck, 2, 2,
                                 topology=p3_machine.topology,
                                 processor=p3_machine.processor,
                                 numeric=True)
        balance = particle_balance(numeric_deck, run.global_flux(),
                                   run.rank_summaries[0]["leakage_history"][-1])
        assert balance.relative_residual < 1e-2


class TestTimingBehaviour:
    def test_message_count_matches_structure(self, p3_machine):
        """Every interior stage exchanges exactly its EW/NS boundary messages."""
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=6, max_iterations=2)
        px, py = 2, 2
        run = run_parallel_sweep(deck, px, py, topology=p3_machine.topology,
                                 processor=p3_machine.processor, numeric=False)
        blocks = deck.blocks_per_iteration * deck.max_iterations
        # For a 2x2 array each rank has exactly one downstream neighbour in
        # each direction for half the octants: in total each block stage
        # produces 1 EW + 1 NS message per interior boundary crossing.
        expected_point_to_point = blocks * (px * (py - 1) + py * (px - 1))
        assert run.total_messages == expected_point_to_point

    def test_weak_scaling_time_grows_with_processor_count(self, p3_machine):
        """More pipeline stages -> longer run time (the paper's linear increase)."""
        times = []
        for px, py in [(1, 1), (2, 2), (2, 4)]:
            deck = Sweep3DInput(it=10 * px, jt=10 * py, kt=10, mk=5, mmi=3,
                                sn=6, max_iterations=2)
            run = run_parallel_sweep(deck, px, py, topology=p3_machine.topology,
                                     processor=p3_machine.processor, numeric=False)
            times.append(run.elapsed_time)
        assert times[0] < times[1] < times[2]

    def test_modelled_run_is_deterministic_without_noise(self, p3_machine):
        deck = Sweep3DInput(it=10, jt=10, kt=10, mk=5, mmi=3, sn=6, max_iterations=2)
        first = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                   processor=p3_machine.processor, numeric=False)
        second = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                    processor=p3_machine.processor, numeric=False)
        assert first.elapsed_time == second.elapsed_time

    def test_noise_changes_but_barely_perturbs_time(self, p3_machine):
        deck = Sweep3DInput(it=10, jt=10, kt=10, mk=5, mmi=3, sn=6, max_iterations=2)
        clean = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                   processor=p3_machine.processor, numeric=False)
        noisy = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                   processor=p3_machine.processor, numeric=False,
                                   noise=NoiseModel(seed=5))
        assert noisy.elapsed_time != clean.elapsed_time
        assert abs(noisy.elapsed_time - clean.elapsed_time) / clean.elapsed_time < 0.15

    def test_compute_fraction_reported(self, p3_machine):
        deck = Sweep3DInput(it=10, jt=10, kt=10, mk=5, mmi=3, sn=6, max_iterations=2)
        run = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                 processor=p3_machine.processor, numeric=False)
        assert 0.0 < run.compute_fraction() <= 1.0

    def test_charge_compute_requires_processor(self, p3_machine):
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, max_iterations=1)
        with pytest.raises(DecompositionError):
            run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                               processor=None, charge_compute=True)

    def test_pure_communication_run(self, p3_machine):
        """charge_compute=False isolates the message pattern."""
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=6, max_iterations=1)
        run = run_parallel_sweep(deck, 2, 2, topology=p3_machine.topology,
                                 processor=None, charge_compute=False,
                                 numeric=False)
        assert run.elapsed_time > 0
        assert all(r.compute_time == 0 for r in run.simulation.ranks)

    def test_mismatched_communicator_size_rejected(self, p3_machine):
        from repro.simmpi.engine import ClusterEngine
        from repro.sweep3d.parallel import (
            ParallelSweepConfig,
            make_decomposition,
            sweep_rank_program,
        )
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, max_iterations=1)
        decomp = make_decomposition(deck, 2, 2)
        engine = ClusterEngine(p3_machine.topology, processor=p3_machine.processor)
        from repro.errors import RankFailureError
        with pytest.raises(RankFailureError):
            engine.run(sweep_rank_program, nranks=2,
                       program_args=(deck, decomp, ParallelSweepConfig(numeric=False)))
