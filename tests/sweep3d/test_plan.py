"""Tests for the reusable simulation plan and its compute cost table."""

import pytest

from repro.errors import DecompositionError
from repro.machines.presets import get_machine
from repro.simnet.noise import NoiseModel, derive_seed
from repro.sweep3d.driver import SimulationPlan
from repro.sweep3d.input import standard_deck
from repro.sweep3d.parallel import SweepCostTable, SweepPlanData
from repro.sweep3d.kernel import SweepKernel


@pytest.fixture(scope="module")
def machine():
    return get_machine("pentium3-myrinet")


class TestSweepCostTable:
    def test_prices_match_the_processor_model(self, machine):
        table = SweepCostTable(machine.processor)
        mix = SweepKernel.block_mix(10, 10, 5, 3, working_set_bytes=1e6)
        assert table.block_seconds(10, 10, 5, 3, 1e6) == machine.processor.execute_time(mix)
        assert table.misses == 1 and table.hits == 0
        table.block_seconds(10, 10, 5, 3, 1e6)
        assert table.hits == 1

    def test_distinct_shapes_priced_separately(self, machine):
        table = SweepCostTable(machine.processor)
        a = table.block_seconds(10, 10, 5, 3, 1e6)
        b = table.block_seconds(10, 10, 4, 3, 1e6)
        assert a != b
        assert table.misses == 2

    def test_all_four_charge_kinds(self, machine):
        table = SweepCostTable(machine.processor)
        proc = machine.processor
        cells, ws = 1000, 5e5
        assert table.source_seconds(cells, ws) == proc.execute_time(
            SweepKernel.source_mix(cells, ws))
        assert table.flux_err_seconds(cells, ws) == proc.execute_time(
            SweepKernel.flux_err_mix(cells, ws))
        assert table.balance_seconds(cells, ws) == proc.execute_time(
            SweepKernel.balance_mix(cells, ws))


class TestSweepPlanData:
    def test_matches_per_rank_construction(self):
        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        shared = SweepPlanData.for_deck(deck)
        kernel = SweepKernel(deck)
        quad = deck.quadrature()
        assert shared.quadrature.total_angles == quad.total_angles
        assert len(shared.angle_blocks) == len(quad.angle_blocks(deck.mmi))
        from repro.sweep3d.geometry import octant_order
        for octant in octant_order():
            expected = kernel.k_blocks_for_octant(octant)
            got = shared.k_blocks(octant)
            assert len(got) == len(expected)
            for mine, theirs in zip(got, expected):
                assert list(mine) == list(theirs)


class TestSimulationPlan:
    def test_bit_identical_to_reference_path(self, machine):
        deck = standard_deck("validation", px=2, py=3, max_iterations=2)
        reference = machine.simulate(deck, 2, 3, seed_offset=11)
        plan = machine.simulation_plan(deck, 2, 3)
        run = plan.run(noise=machine.noise_model(11))
        assert run.elapsed_time == reference.elapsed_time
        assert ([r.finish_time for r in run.simulation.ranks]
                == [r.finish_time for r in reference.simulation.ranks])
        assert run.total_messages == reference.total_messages

    def test_plan_reuse_across_seeds(self, machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=2)
        plan = machine.simulation_plan(deck, 2, 2)
        a = plan.run(noise=machine.noise_model(1))
        b = plan.run(noise=machine.noise_model(2))
        again = plan.run(noise=machine.noise_model(1))
        assert a.elapsed_time != b.elapsed_time
        assert a.elapsed_time == again.elapsed_time
        assert plan.runs == 3

    def test_seed_parameter_reseeds_noise(self, machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        plan = machine.simulation_plan(deck, 2, 2)
        base = machine.noise_model(0)
        seed = derive_seed("test", 2, 2)
        via_seed = plan.run(noise=base, seed=seed)
        direct = plan.run(noise=base.reseeded(seed))
        assert via_seed.elapsed_time == direct.elapsed_time

    def test_noise_free_runs_are_deterministic(self, machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        plan = machine.simulation_plan(deck, 2, 2)
        assert plan.run().elapsed_time == plan.run(noise=NoiseModel.disabled()).elapsed_time

    def test_shared_cost_table_between_plans(self, machine):
        deck_a = standard_deck("validation", px=1, py=2, max_iterations=1)
        deck_b = standard_deck("validation", px=2, py=2, max_iterations=1)
        table = SweepCostTable(machine.processor)
        plan_a = machine.simulation_plan(deck_a, 1, 2, cost_table=table)
        plan_b = machine.simulation_plan(deck_b, 2, 2, cost_table=table)
        plan_a.run()
        misses_after_first = table.misses
        plan_b.run()
        # Weak scaling: every rank sub-domain has the same shape, so the
        # second plan prices nothing new.
        assert table.misses == misses_after_first
        assert table.hits > 0

    def test_foreign_cost_table_rejected(self, machine):
        other = get_machine("opteron-gige")
        deck = standard_deck("validation", px=1, py=1, max_iterations=1)
        with pytest.raises(DecompositionError, match="different processor"):
            SimulationPlan(deck, 1, 1, topology=machine.topology,
                           processor=machine.processor,
                           cost_table=SweepCostTable(other.processor))

    def test_charge_compute_requires_processor(self, machine):
        deck = standard_deck("validation", px=1, py=1, max_iterations=1)
        with pytest.raises(DecompositionError):
            SimulationPlan(deck, 1, 1, topology=machine.topology, processor=None)


class TestMultiSampleRuns:
    @pytest.fixture(scope="class")
    def plan(self, machine):
        deck = standard_deck("validation", px=2, py=2, max_iterations=1)
        return machine.simulation_plan(deck, 2, 2)

    def test_samples_match_sequential_runs(self, machine, plan):
        sample_set = plan.run(noise=machine.noise_model(11), mode="auto",
                              samples=4)
        assert sample_set.n_samples == len(sample_set) == 4
        assert sample_set.seeds == [machine.noise_seed + 11 + s
                                    for s in range(4)]
        for index, seed in enumerate(sample_set.seeds):
            single = plan.run(noise=machine.noise_model(0), seed=seed,
                              mode="replay")
            assert sample_set.elapsed_times[index] == single.elapsed_time
            materialised = sample_set.sample(index)
            assert materialised.elapsed_time == single.elapsed_time
            assert materialised.total_messages == single.total_messages

    def test_sample_zero_matches_single_run_path(self, machine, plan):
        # The uncertainty block is additive: the headline number of a
        # sampled run is the plain run at the same seed offset.
        single = machine.simulate(plan.deck, 2, 2, seed_offset=5,
                                  execution="auto")
        sampled = machine.simulate(plan.deck, 2, 2, seed_offset=5,
                                   execution="auto", samples=3)
        assert sampled.sample(0).elapsed_time == single.elapsed_time

    def test_seed_parameter_offsets_the_sample_seeds(self, machine, plan):
        seed = derive_seed("sample-test", 2, 2)
        sample_set = plan.run(noise=machine.noise_model(0), seed=seed,
                              samples=2, mode="auto")
        assert sample_set.seeds == [seed, seed + 1]

    def test_summary_and_stats(self, machine, plan):
        sample_set = plan.run(noise=machine.noise_model(3), mode="auto",
                              samples=8)
        summary = sample_set.summary()
        assert summary["samples"] == 8.0
        assert sample_set.elapsed_std > 0.0
        assert sample_set.elapsed_ci95 == pytest.approx(
            1.96 * sample_set.elapsed_std / 8 ** 0.5)
        assert summary["elapsed_min"] <= sample_set.elapsed_mean \
            <= summary["elapsed_max"]

    def test_run_counters_count_samples(self, machine):
        deck = standard_deck("validation", px=1, py=2, max_iterations=1)
        plan = machine.simulation_plan(deck, 1, 2)
        plan.run(noise=machine.noise_model(0), mode="auto", samples=6)
        assert plan.runs == 6
        assert plan.replays == 6

    def test_engine_mode_rejected(self, machine, plan):
        with pytest.raises(ValueError, match="batched trace"):
            plan.run(noise=machine.noise_model(0), mode="engine", samples=2)

    def test_nonpositive_samples_rejected(self, machine, plan):
        with pytest.raises(ValueError, match="samples must be >= 1"):
            plan.run(noise=machine.noise_model(0), mode="auto", samples=0)
