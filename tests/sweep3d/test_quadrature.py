"""Tests for the level-symmetric quadrature sets."""

import numpy as np
import pytest

from repro.errors import InputDeckError
from repro.sweep3d.quadrature import LevelSymmetricQuadrature


class TestQuadratureSets:
    @pytest.mark.parametrize("sn,angles", [(2, 1), (4, 3), (6, 6), (8, 10)])
    def test_angles_per_octant(self, sn, angles):
        quad = LevelSymmetricQuadrature(sn)
        assert quad.angles_per_octant == angles
        assert quad.total_angles == 8 * angles
        # The LQ_N relation: n = N (N + 2) / 8.
        assert angles == sn * (sn + 2) // 8

    @pytest.mark.parametrize("sn", [2, 4, 6, 8])
    def test_weights_normalised(self, sn):
        quad = LevelSymmetricQuadrature(sn)
        assert quad.weight_sum() == pytest.approx(1.0, rel=1e-5)

    @pytest.mark.parametrize("sn", [2, 4, 6, 8])
    def test_second_moment_is_one_third(self, sn):
        # The level-symmetric sets integrate mu^2 exactly: sum(w mu^2) = 1/3.
        quad = LevelSymmetricQuadrature(sn)
        assert quad.mean_cosine_check() == pytest.approx(1.0 / 3.0, rel=1e-5)

    @pytest.mark.parametrize("sn", [2, 4, 6, 8])
    def test_directions_are_unit_vectors(self, sn):
        octant = LevelSymmetricQuadrature(sn).octant_angles()
        norms = octant.mu ** 2 + octant.eta ** 2 + octant.xi ** 2
        np.testing.assert_allclose(norms, 1.0, rtol=1e-5)

    @pytest.mark.parametrize("sn", [2, 4, 6, 8])
    def test_cosines_positive(self, sn):
        octant = LevelSymmetricQuadrature(sn).octant_angles()
        assert (octant.mu > 0).all() and (octant.eta > 0).all() and (octant.xi > 0).all()

    def test_unsupported_order(self):
        with pytest.raises(InputDeckError):
            LevelSymmetricQuadrature(12)


class TestAngleBlocking:
    def test_s6_with_mmi3_gives_two_blocks(self):
        quad = LevelSymmetricQuadrature(6)
        blocks = quad.angle_blocks(3)
        assert len(blocks) == 2
        assert all(block.n_angles == 3 for block in blocks)
        assert quad.n_angle_blocks(3) == 2

    def test_blocks_partition_all_angles(self):
        quad = LevelSymmetricQuadrature(8)
        blocks = quad.angle_blocks(4)
        assert sum(block.n_angles for block in blocks) == quad.angles_per_octant
        total_weight = sum(float(block.weight.sum()) for block in blocks)
        assert total_weight == pytest.approx(1.0 / 8.0, rel=1e-5)

    def test_uneven_blocking_last_block_smaller(self):
        quad = LevelSymmetricQuadrature(8)   # 10 angles per octant
        blocks = quad.angle_blocks(4)
        assert [b.n_angles for b in blocks] == [4, 4, 2]

    def test_mmi_larger_than_angle_count(self):
        quad = LevelSymmetricQuadrature(4)
        blocks = quad.angle_blocks(100)
        assert len(blocks) == 1
        assert blocks[0].n_angles == 3

    def test_invalid_mmi(self):
        with pytest.raises(InputDeckError):
            LevelSymmetricQuadrature(6).angle_blocks(0)
        with pytest.raises(InputDeckError):
            LevelSymmetricQuadrature(6).n_angle_blocks(0)

    def test_angle_block_slicing(self):
        octant = LevelSymmetricQuadrature(6).octant_angles()
        block = octant.angle_block(2, 3)
        np.testing.assert_allclose(block.mu, octant.mu[2:5])
        assert block.n_angles == 3
