"""Tests for the serial reference solver and the physics invariants."""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.serial import SerialSweepSolver
from repro.sweep3d.verification import (
    BalanceReport,
    flux_is_nonnegative,
    infinite_medium_flux,
    interior_flux_ratio,
    max_relative_difference,
    particle_balance,
)


@pytest.fixture(scope="module")
def converged_result():
    """A small problem iterated to tight convergence (shared across tests)."""
    deck = Sweep3DInput(it=6, jt=6, kt=6, mk=3, mmi=2, sn=4,
                        epsi=1e-7, max_iterations=30,
                        sigma_t=1.0, sigma_s=0.5, fixed_source=1.0)
    return deck, SerialSweepSolver(deck).solve()


class TestSourceIteration:
    def test_converges(self, converged_result):
        _, result = converged_result
        assert result.converged
        assert result.final_error <= 1e-7

    def test_error_history_decreases(self, converged_result):
        _, result = converged_result
        errors = result.error_history[1:]
        assert all(b <= a * 1.01 for a, b in zip(errors, errors[1:]))

    def test_flux_nonnegative(self, converged_result):
        _, result = converged_result
        assert flux_is_nonnegative(result.phi)

    def test_particle_balance(self, converged_result):
        deck, result = converged_result
        balance = particle_balance(deck, result.phi, result.boundary_leakage)
        assert balance.relative_residual < 1e-3

    def test_interior_flux_below_infinite_medium(self, converged_result):
        deck, result = converged_result
        ratio = interior_flux_ratio(deck, result.phi, margin=1)
        assert 0.2 < ratio < 1.0   # vacuum boundaries leak, so below the infinite-medium value

    def test_flux_symmetry(self, converged_result):
        """A symmetric problem produces a symmetric flux field."""
        _, result = converged_result
        phi = result.phi
        np.testing.assert_allclose(phi, phi[::-1, :, :], rtol=1e-10)
        np.testing.assert_allclose(phi, phi[:, ::-1, :], rtol=1e-10)
        np.testing.assert_allclose(phi, phi[:, :, ::-1], rtol=1e-10)
        np.testing.assert_allclose(phi, np.transpose(phi, (1, 0, 2)), rtol=1e-10)

    def test_iteration_cap_respected(self):
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=4,
                            epsi=1e-14, max_iterations=3)
        result = SerialSweepSolver(deck).solve()
        assert result.iterations == 3
        assert not result.converged

    def test_require_convergence_raises(self):
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=4,
                            epsi=1e-14, max_iterations=2)
        with pytest.raises(ConvergenceError):
            SerialSweepSolver(deck).solve(require_convergence=True)

    def test_pure_absorber_single_iteration(self):
        """With no scattering the first iteration is already the solution."""
        deck = Sweep3DInput(it=5, jt=5, kt=5, mk=5, mmi=3, sn=4,
                            sigma_t=1.0, sigma_s=0.0, fixed_source=1.0,
                            epsi=1e-10, max_iterations=5)
        result = SerialSweepSolver(deck).solve()
        assert result.iterations <= 3

    def test_scattering_increases_flux(self):
        base = Sweep3DInput(it=5, jt=5, kt=5, mk=5, mmi=3, sn=4,
                            sigma_t=1.0, sigma_s=0.0, max_iterations=15, epsi=1e-8)
        scattering = Sweep3DInput(it=5, jt=5, kt=5, mk=5, mmi=3, sn=4,
                                  sigma_t=1.0, sigma_s=0.6, max_iterations=25, epsi=1e-8)
        flux_absorber = SerialSweepSolver(base).solve().mean_flux()
        flux_scatterer = SerialSweepSolver(scattering).solve().mean_flux()
        assert flux_scatterer > flux_absorber

    def test_blocking_factors_do_not_change_the_answer(self):
        """mk/mmi only affect pipelining, never the converged flux."""
        results = []
        for mk, mmi in [(1, 1), (2, 3), (6, 6)]:
            deck = Sweep3DInput(it=4, jt=4, kt=6, mk=mk, mmi=mmi, sn=4,
                                epsi=1e-9, max_iterations=25)
            results.append(SerialSweepSolver(deck).solve().phi)
        assert max_relative_difference(results[0], results[1]) < 1e-10
        assert max_relative_difference(results[0], results[2]) < 1e-10

    def test_iteration_mix_flops(self):
        deck = Sweep3DInput(it=4, jt=4, kt=4, mk=2, mmi=3, sn=6)
        solver = SerialSweepSolver(deck)
        expected = 36.0 * deck.total_cells * deck.quadrature().total_angles
        assert solver.iteration_mix().flops == pytest.approx(expected)


class TestVerificationHelpers:
    def test_balance_report_residual(self):
        report = BalanceReport(production=10.0, absorption=6.0, leakage=4.0)
        assert report.residual == pytest.approx(0.0)
        assert report.relative_residual == pytest.approx(0.0)

    def test_balance_report_imbalance(self):
        report = BalanceReport(production=10.0, absorption=5.0, leakage=4.0)
        assert report.relative_residual == pytest.approx(0.1)

    def test_infinite_medium_flux(self):
        deck = Sweep3DInput(sigma_t=1.0, sigma_s=0.25, fixed_source=3.0)
        assert infinite_medium_flux(deck) == pytest.approx(4.0)

    def test_max_relative_difference(self):
        a = np.ones((2, 2, 2))
        b = np.ones((2, 2, 2)) * 1.1
        assert max_relative_difference(a, b) == pytest.approx(0.1 / 1.1, rel=1e-6)
        assert max_relative_difference(np.zeros(3), np.zeros(3)) == 0.0

    def test_flux_nonnegative_tolerance(self):
        phi = np.array([0.0, -1e-15, 2.0])
        assert flux_is_nonnegative(phi, tolerance=1e-12)
        assert not flux_is_nonnegative(np.array([-1.0]))
