"""Tests for the stable public facade (:mod:`repro.api`)."""

import pytest

import repro
import repro.api as api


class TestFacadeSurface:
    def test_lazy_attribute_on_package(self):
        assert repro.api is api
        with pytest.raises(AttributeError):
            repro.no_such_attribute

    def test_study_api_exports(self):
        for name in ("StudySpec", "StudyRunner", "StudyResult", "build_spec",
                     "run_study", "run_studies", "load_spec", "study_names",
                     "write_study_artifacts", "SweepDiskCache"):
            assert hasattr(api, name), name

    def test_available_machines(self):
        machines = api.available_machines()
        assert "pentium3-myrinet" in machines
        assert machines == sorted(machines)


class TestOneShots:
    def test_predict_matches_engine_path(self):
        prediction = api.predict("opteron", 2, 2, iterations=2)
        assert prediction.total_time > 0
        assert prediction.hardware_name

    def test_simulate_accepts_names_and_decks(self):
        run = api.simulate("pentium3", 2, 2, iterations=1)
        assert run.elapsed_time > 0
        deck = api.standard_deck("mini", px=2, py=2, max_iterations=2)
        numeric = api.simulate(api.get_machine("pentium3"), 2, 2, deck=deck,
                               numeric=True, with_noise=False)
        assert numeric.error_history

    def test_default_context_is_memoised_and_clearable(self):
        first = api.default_context()
        assert api.default_context() is first
        api.clear_cached_context()
        try:
            second = api.default_context()
            assert second is not first
            assert api.default_context() is second
        finally:
            # Leave a fresh memoised context for the rest of the suite.
            api.clear_cached_context()

    def test_one_shots_bit_identical_across_context_reset(self):
        before = api.predict("opteron", 2, 2, iterations=2)
        api.clear_cached_context()
        after = api.predict("opteron", 2, 2, iterations=2)
        assert after.total_time == before.total_time
        assert after.compute_time == before.compute_time

    def test_service_exports_resolve_lazily(self):
        from repro.service.client import ServiceClient
        from repro.service.core import PredictionService, run_server
        assert api.PredictionService is PredictionService
        assert api.ServiceClient is ServiceClient
        assert api.run_server is run_server
        with pytest.raises(AttributeError):
            api.no_such_service_symbol

    def test_predict_and_study_rows_agree(self):
        """One-shot predictions equal the registered table study's column."""
        result = api.run_study(api.build_spec(
            "table2", max_pes=4, max_iterations=2,
            simulate_measurement=False))
        one_shot = api.predict("opteron-gige", 2, 2, iterations=2)
        assert result.payload.rows[0].predicted \
            == pytest.approx(one_shot.total_time, rel=1e-12)
