"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_machines_listing(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "pentium3-myrinet" in out
        assert "hypothetical-opteron-myrinet" in out

    def test_predict_command(self, capsys):
        assert main(["predict", "--machine", "opteron", "--px", "2", "--py", "2",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "prediction for sweep3d" in out
        assert "sweep" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulated run time" in out

    def test_simulate_numeric_small(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--deck", "mini", "--iterations", "2", "--numeric"]) == 0
        out = capsys.readouterr().out
        assert "flux error" in out

    def test_table_command_prediction_only(self, capsys):
        assert main(["table2", "--max-pes", "6", "--iterations", "2",
                     "--no-measurement"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "100x100x50" in out

    def test_table_command_with_measurement(self, capsys):
        assert main(["table2", "--max-pes", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Error(%)" in out

    def test_figure_command(self, capsys):
        assert main(["figure8", "--max-processors", "16"]) == 0
        out = capsys.readouterr().out
        assert "twenty million cell" in out
        assert "340 MFLOPS" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "legacy" in out

    def test_hmcl_command(self, capsys):
        assert main(["hmcl", "--machine", "altix"]) == 0
        out = capsys.readouterr().out
        assert "hardware altix-itanium2" in out
        assert "mpi" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_machine_raises(self):
        from repro.errors import MachineNotFoundError
        with pytest.raises(MachineNotFoundError):
            main(["predict", "--machine", "cray-xmp"])


class TestSimulateGridCli:
    def test_grid_through_simulation_backend(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "sweep-cache")
        args = ["simulate", "--machine", "pentium3", "--arrays", "1x1,2x2",
                "--iterations", "1", "--workers", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "'simulate' backend" in out
        assert "1x1" in out and "2x2" in out
        assert "0 hit(s) / 2 miss(es), 2 store(s)" in out

        # Warm second run: every point served from the shared disk store.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 hit(s) / 0 miss(es), 0 store(s)" in out

    def test_grid_through_prediction_backend(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--arrays", "1x1,2x2",
                     "--iterations", "1", "--backend", "predict"]) == 0
        out = capsys.readouterr().out
        assert "'predict' backend" in out
        assert "Predicted" in out

    def test_bad_arrays_rejected(self, capsys):
        assert main(["simulate", "--arrays", "2by2"]) == 2
        assert main(["simulate", "--arrays", ","]) == 2
        assert main(["simulate", "--arrays", "0x2"]) == 2

    def test_bad_workers_rejected(self, capsys):
        assert main(["simulate", "--arrays", "1x1", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, capsys):
        assert main(["simulate", "--arrays", "1x1", "--backend", "warp"]) == 2
        assert "available" in capsys.readouterr().out


class TestSampledSimulateCli:
    def test_single_run_reports_noise_spread(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2",
                     "--py", "2", "--iterations", "1", "--samples", "6"]) == 0
        out = capsys.readouterr().out
        assert "simulated run time" in out
        assert "noise spread over 6 seed(s)" in out
        assert "95% CI" in out

    def test_grid_gains_mean_and_ci_columns(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--arrays",
                     "1x1,2x2", "--iterations", "1", "--samples", "3"]) == 0
        out = capsys.readouterr().out
        assert "3 sample(s)/point" in out
        assert "Mean" in out and "95% CI" in out

    def test_predict_backend_rejects_samples(self, capsys):
        assert main(["simulate", "--arrays", "1x1", "--backend", "predict",
                     "--samples", "4"]) == 2
        assert "simulate backend" in capsys.readouterr().out

    def test_engine_execution_rejects_samples(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "1",
                     "--py", "1", "--iterations", "1", "--execution",
                     "engine", "--samples", "2"]) == 2
        assert "batched trace replay" in capsys.readouterr().out


class TestSteadySimulateCli:
    def test_steady_execution_noise_free(self, capsys):
        assert main(["simulate", "--machine", "steady", "--px", "2",
                     "--py", "2", "--iterations", "12", "--no-noise",
                     "--execution", "steady"]) == 0
        out = capsys.readouterr().out
        assert "simulated run time" in out
        assert "execution tier: steady" in out

    def test_steady_with_noise_falls_back_to_replay(self, capsys):
        assert main(["simulate", "--machine", "steady", "--px", "2",
                     "--py", "2", "--iterations", "12",
                     "--execution", "steady"]) == 0
        assert "execution tier: replay" in capsys.readouterr().out

    def test_describe_trace_reports_period(self, capsys):
        assert main(["simulate", "--machine", "steady", "--px", "2",
                     "--py", "2", "--iterations", "12",
                     "--describe-trace"]) == 0
        out = capsys.readouterr().out
        assert "2x2:" in out
        assert "steady-eligible" in out

    def test_describe_trace_needs_simulate_backend(self, capsys):
        assert main(["simulate", "--machine", "steady", "--px", "2",
                     "--py", "2", "--backend", "predict",
                     "--describe-trace"]) == 2
        assert "simulate backend" in capsys.readouterr().out


class TestStudyCli:
    def test_studies_listing(self, capsys):
        assert main(["studies"]) == 0
        out = capsys.readouterr().out
        for name in ("table1", "figure8", "blocking", "scaling",
                     "ablation", "agreement"):
            assert name in out

    def test_studies_json_listing(self, capsys):
        import json as json_module
        assert main(["studies", "--json"]) == 0
        listing = json_module.loads(capsys.readouterr().out)
        by_name = {entry["name"]: entry for entry in listing}
        from repro.experiments.study import study_names
        assert sorted(by_name) == sorted(study_names())
        table1 = by_name["table1"]
        assert table1["machine"] == "pentium3-myrinet"
        assert table1["backend"] == "predict"
        assert table1["defaults"]["max_iterations"] == 12
        assert table1["smoke"]["max_pes"] == 6
        assert table1["shard_axis"] == "rows"
        noise = by_name["noise-sensitivity"]
        assert noise["defaults"]["samples"] == 16
        assert noise["smoke"]["samples"] == 2

    def test_run_samples_flag(self, capsys):
        assert main(["run", "table1", "--smoke", "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "== table1" in out
        assert main(["run", "table1", "--samples", "-1"]) == 2
        assert "--samples must be >= 0" in capsys.readouterr().out

    def test_run_samples_flag_skips_studies_without_the_param(self, capsys):
        # figure8 has no samples parameter; the flag must not crash the
        # multi-study invocation like an unknown --set override would.
        assert main(["run", "table2", "figure8", "--smoke",
                     "--samples", "2"]) == 0
        out = capsys.readouterr().out
        assert "== table2" in out and "== figure8" in out

    def test_run_named_study_smoke(self, capsys):
        assert main(["run", "table2", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "== table2" in out
        assert "100x100x50" in out

    def test_run_with_set_overrides(self, capsys):
        assert main(["run", "table2", "--set", "max_pes=4",
                     "--set", "max_iterations=1",
                     "--set", "simulate_measurement=false"]) == 0
        out = capsys.readouterr().out
        assert "1 row(s)" in out

    def test_run_bad_set_override(self, capsys):
        assert main(["run", "table2", "--set", "max_pies=4"]) == 2
        assert "not accepted by any" in capsys.readouterr().out
        assert main(["run", "table2", "--set", "nonsense"]) == 2
        assert "bad --set" in capsys.readouterr().out

    def test_run_all_with_partial_overrides(self, capsys):
        # max_iterations only exists for some studies; the override applies
        # where accepted instead of crashing the whole invocation.
        assert main(["run", "table2", "figure8", "--smoke",
                     "--set", "max_pes=4"]) == 0
        out = capsys.readouterr().out
        assert "== table2" in out and "== figure8" in out

    def test_run_spec_file_with_artifacts(self, capsys, tmp_path):
        from repro.experiments.study import build_spec
        spec_file = tmp_path / "my-study.toml"
        spec_file.write_text(build_spec("table2", max_pes=4,
                                        max_iterations=1).to_toml())
        out_dir = tmp_path / "artifacts"
        assert main(["run", str(spec_file), "--out", str(out_dir)]) == 0
        assert (out_dir / "manifest.json").exists()
        assert (out_dir / "table2.json").exists()
        assert (out_dir / "table2.csv").exists()
        out = capsys.readouterr().out
        assert "manifest.json" in out

    def test_run_all_smoke_writes_every_artifact(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main(["run", "--all", "--smoke", "--out", str(out_dir)]) == 0
        import json
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert [e["study"] for e in manifest["studies"]] == [
            "table1", "table2", "table3", "figure8", "figure9",
            "blocking", "scaling", "ablation", "agreement",
            "noise-sensitivity", "steady-scaling"]
        for entry in manifest["studies"]:
            assert (out_dir / entry["artifacts"]["csv"]).exists()

    def test_run_without_studies_errors(self, capsys):
        assert main(["run"]) == 2
        assert "nothing to run" in capsys.readouterr().out

    def test_run_with_shared_cache_dir(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "store")
        args = ["run", "table2", "--smoke", "--cache-dir", cache_dir]
        assert main(args) == 0
        assert "store(s)" in capsys.readouterr().out
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 miss(es)" in out


class TestCacheCli:
    def test_stats_and_prune(self, capsys, tmp_path):
        from repro.experiments.diskcache import SweepDiskCache
        cache = SweepDiskCache(tmp_path / "store")
        for index in range(4):
            cache.put(("entry", index), index)

        assert main(["cache", "stats", "--cache-dir", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "entries: 4" in out

        assert main(["cache", "prune", "--cache-dir", str(tmp_path / "store"),
                     "--max-entries", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned 3 entries" in out
        assert len(cache) == 1

    def test_prune_requires_a_limit(self, capsys, tmp_path):
        assert main(["cache", "prune", "--cache-dir", str(tmp_path)]) == 2
        assert "--max-entries" in capsys.readouterr().out


class TestShardCli:
    def test_shard_plan_prints_the_split(self, capsys):
        assert main(["shard", "plan", "table1", "--shards", "3"]) == 0
        out = capsys.readouterr().out
        assert "axis 'rows'" in out
        assert "3 shard(s)" in out
        assert "shard 0/3" in out and "shard 2/3" in out

    def test_shard_plan_writes_runnable_specs(self, capsys, tmp_path):
        assert main(["shard", "plan", "scaling", "--shards", "2", "--smoke",
                     "--out", str(tmp_path)]) == 0
        spec_files = sorted(tmp_path.glob("scaling-shard*.toml"))
        assert len(spec_files) == 2
        out_dir = tmp_path / "artifacts"
        assert main(["run", str(spec_files[0]), "--out", str(out_dir)]) == 0
        entry = __import__("json").loads(
            (out_dir / "manifest.json").read_text())["studies"][0]
        assert entry["sharding"]["shard_index"] == 0

    def test_shard_plan_accepts_spec_files(self, capsys, tmp_path):
        from repro.experiments.study import build_spec
        spec_file = tmp_path / "figure8.toml"
        spec_file.write_text(
            build_spec("figure8", processor_counts=[1, 4, 16]).to_toml())
        assert main(["shard", "plan", str(spec_file), "--shards", "2"]) == 0
        assert "2 shard(s)" in capsys.readouterr().out

    def test_run_shard_selector_validation(self, capsys):
        assert main(["run", "table2", "--shard", "nonsense"]) == 2
        assert "bad --shard" in capsys.readouterr().out
        assert main(["run", "table2", "--shard", "4/4"]) == 2
        assert "bad --shard" in capsys.readouterr().out

    def test_run_shard_without_work_writes_empty_manifest(self, capsys,
                                                          tmp_path):
        # The smoke ablation grid is one unit; shard 3 of 4 has no work but
        # still publishes a manifest for the fleet collector.
        out_dir = tmp_path / "idle"
        assert main(["run", "ablation", "--smoke", "--shard", "3/4",
                     "--out", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "no work here" in out
        manifest = __import__("json").loads(
            (out_dir / "manifest.json").read_text())
        assert manifest["studies"] == []

    def test_sharded_matrix_merges_bit_identically(self, capsys, tmp_path):
        """The CI flow in miniature: 3 shards + merge + --expect."""
        for index in range(3):
            assert main(["run", "table2", "figure8", "--smoke",
                         "--shard", f"{index}/3",
                         "--out", str(tmp_path / f"shard-{index}")]) == 0
        assert main(["run", "table2", "figure8", "--smoke",
                     "--out", str(tmp_path / "reference")]) == 0
        capsys.readouterr()
        assert main(["merge"] + [str(tmp_path / f"shard-{i}")
                                 for i in range(3)]
                    + ["--out", str(tmp_path / "merged"),
                       "--expect", str(tmp_path / "reference")]) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert (tmp_path / "merged" / "table2.csv").read_bytes() \
            == (tmp_path / "reference" / "table2.csv").read_bytes()

    def test_merge_expect_mismatch_fails(self, capsys, tmp_path):
        assert main(["run", "scaling", "--smoke", "--shard", "0/2",
                     "--out", str(tmp_path / "shard-0")]) == 0
        assert main(["run", "scaling", "--smoke", "--shard", "1/2",
                     "--out", str(tmp_path / "shard-1")]) == 0
        assert main(["run", "scaling", "--set", "processor_counts=[1,4]",
                     "--out", str(tmp_path / "other")]) == 0
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard-0"),
                     str(tmp_path / "shard-1"),
                     "--out", str(tmp_path / "merged"),
                     "--expect", str(tmp_path / "other")]) == 1
        assert "does NOT match" in capsys.readouterr().out

    def test_merge_incomplete_fleet_fails(self, capsys, tmp_path):
        assert main(["run", "scaling", "--smoke", "--shard", "0/2",
                     "--out", str(tmp_path / "shard-0")]) == 0
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard-0"),
                     "--out", str(tmp_path / "merged")]) == 2
        assert "merge failed" in capsys.readouterr().out

    def test_merge_expect_missing_reference_is_clean(self, capsys, tmp_path):
        assert main(["run", "ablation", "--smoke", "--shard", "0/1",
                     "--out", str(tmp_path / "shard-0")]) == 0
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard-0"),
                     "--out", str(tmp_path / "merged"),
                     "--expect", str(tmp_path / "no-such-dir")]) == 2
        assert "cannot compare against" in capsys.readouterr().out

    def test_merge_corrupt_manifest_is_a_clean_error(self, capsys, tmp_path):
        assert main(["run", "ablation", "--smoke", "--shard", "0/1",
                     "--out", str(tmp_path / "shard-0")]) == 0
        (tmp_path / "shard-0" / "manifest.json").write_text("{not json")
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard-0"),
                     "--out", str(tmp_path / "merged")]) == 2
        out = capsys.readouterr().out
        assert "merge failed" in out
        assert "not valid JSON" in out
        assert "Traceback" not in out

    def test_merge_truncated_manifest_entry_is_a_clean_error(self, capsys,
                                                             tmp_path):
        import json
        assert main(["run", "ablation", "--smoke", "--shard", "0/1",
                     "--out", str(tmp_path / "shard-0")]) == 0
        manifest_path = tmp_path / "shard-0" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        del manifest["studies"][0]["spec_hash"]
        manifest_path.write_text(json.dumps(manifest))
        capsys.readouterr()
        assert main(["merge", str(tmp_path / "shard-0"),
                     "--out", str(tmp_path / "merged")]) == 2
        out = capsys.readouterr().out
        assert "merge failed" in out
        assert "missing required field" in out
        assert "Traceback" not in out


class TestFleetCli:
    def test_fleet_serve_with_worker_threads_matches_reference(self, capsys,
                                                               tmp_path):
        """The elastic CI flow in miniature: serve + 2 workers + --expect."""
        import threading
        assert main(["run", "table2", "--smoke",
                     "--out", str(tmp_path / "reference")]) == 0
        fleet_dir = tmp_path / "fleet"
        workers = [
            threading.Thread(target=main, args=(
                ["fleet", "work", "--fleet-dir", str(fleet_dir),
                 "--worker-id", f"w{n}", "--poll", "0.02",
                 "--wait-timeout", "30"],))
            for n in range(2)
        ]
        [w.start() for w in workers]
        try:
            code = main(["fleet", "serve", "table2", "--smoke",
                         "--fleet-dir", str(fleet_dir), "--poll", "0.02",
                         "--timeout", "120",
                         "--out", str(tmp_path / "merged"),
                         "--expect", str(tmp_path / "reference")])
        finally:
            [w.join(timeout=60) for w in workers]
        assert code == 0
        out = capsys.readouterr().out
        assert "enqueued 2 unit(s)" in out
        assert "matches" in out
        assert (tmp_path / "merged" / "table2.csv").read_bytes() \
            == (tmp_path / "reference" / "table2.csv").read_bytes()

        capsys.readouterr()
        assert main(["fleet", "status", "--fleet-dir", str(fleet_dir)]) == 0
        status_out = capsys.readouterr().out
        assert "units: 2/2 done" in status_out
        assert "done" in status_out

    def test_fleet_status_json_and_missing_dir(self, capsys, tmp_path):
        import json
        assert main(["fleet", "status",
                     "--fleet-dir", str(tmp_path / "nowhere")]) == 2
        assert "fleet failed" in capsys.readouterr().out

        assert main(["run", "table2", "--smoke",
                     "--out", str(tmp_path / "reference")]) == 0
        fleet_dir = tmp_path / "fleet"
        from repro.experiments.fleet import FleetCoordinator
        from repro.experiments.study import build_spec
        FleetCoordinator(fleet_dir).enqueue([build_spec("table2")],
                                            smoke=True)
        capsys.readouterr()
        assert main(["fleet", "status", "--fleet-dir", str(fleet_dir),
                     "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["unit_count"] == 2
        assert status["done"] == 0
        assert status["status"] == "running"

    def test_fleet_serve_expect_requires_out(self, capsys, tmp_path):
        import threading
        fleet_dir = tmp_path / "fleet"
        worker = threading.Thread(target=main, args=(
            ["fleet", "work", "--fleet-dir", str(fleet_dir),
             "--poll", "0.02", "--wait-timeout", "30"],))
        worker.start()
        try:
            code = main(["fleet", "serve", "ablation", "--smoke",
                         "--fleet-dir", str(fleet_dir), "--poll", "0.02",
                         "--timeout", "120",
                         "--expect", str(tmp_path / "reference")])
        finally:
            worker.join(timeout=60)
        assert code == 2
        assert "--expect needs --out" in capsys.readouterr().out
