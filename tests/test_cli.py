"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_machines_listing(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "pentium3-myrinet" in out
        assert "hypothetical-opteron-myrinet" in out

    def test_predict_command(self, capsys):
        assert main(["predict", "--machine", "opteron", "--px", "2", "--py", "2",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "prediction for sweep3d" in out
        assert "sweep" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulated run time" in out

    def test_simulate_numeric_small(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--deck", "mini", "--iterations", "2", "--numeric"]) == 0
        out = capsys.readouterr().out
        assert "flux error" in out

    def test_table_command_prediction_only(self, capsys):
        assert main(["table2", "--max-pes", "6", "--iterations", "2",
                     "--no-measurement"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "100x100x50" in out

    def test_table_command_with_measurement(self, capsys):
        assert main(["table2", "--max-pes", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Error(%)" in out

    def test_figure_command(self, capsys):
        assert main(["figure8", "--max-processors", "16"]) == 0
        out = capsys.readouterr().out
        assert "twenty million cell" in out
        assert "340 MFLOPS" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "legacy" in out

    def test_hmcl_command(self, capsys):
        assert main(["hmcl", "--machine", "altix"]) == 0
        out = capsys.readouterr().out
        assert "hardware altix-itanium2" in out
        assert "mpi" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_machine_raises(self):
        from repro.errors import MachineNotFoundError
        with pytest.raises(MachineNotFoundError):
            main(["predict", "--machine", "cray-xmp"])


class TestSimulateGridCli:
    def test_grid_through_simulation_backend(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "sweep-cache")
        args = ["simulate", "--machine", "pentium3", "--arrays", "1x1,2x2",
                "--iterations", "1", "--workers", "2", "--cache-dir", cache_dir]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "'simulate' backend" in out
        assert "1x1" in out and "2x2" in out
        assert "0 hit(s) / 2 miss(es), 2 store(s)" in out

        # Warm second run: every point served from the shared disk store.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "2 hit(s) / 0 miss(es), 0 store(s)" in out

    def test_grid_through_prediction_backend(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--arrays", "1x1,2x2",
                     "--iterations", "1", "--backend", "predict"]) == 0
        out = capsys.readouterr().out
        assert "'predict' backend" in out
        assert "Predicted" in out

    def test_bad_arrays_rejected(self, capsys):
        assert main(["simulate", "--arrays", "2by2"]) == 2
        assert main(["simulate", "--arrays", ","]) == 2
        assert main(["simulate", "--arrays", "0x2"]) == 2

    def test_bad_workers_rejected(self, capsys):
        assert main(["simulate", "--arrays", "1x1", "--workers", "0"]) == 2
        assert "--workers" in capsys.readouterr().out

    def test_unknown_backend_rejected(self, capsys):
        assert main(["simulate", "--arrays", "1x1", "--backend", "warp"]) == 2
        assert "available" in capsys.readouterr().out
