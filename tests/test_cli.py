"""Tests for the command line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_machines_listing(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "pentium3-myrinet" in out
        assert "hypothetical-opteron-myrinet" in out

    def test_predict_command(self, capsys):
        assert main(["predict", "--machine", "opteron", "--px", "2", "--py", "2",
                     "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "prediction for sweep3d" in out
        assert "sweep" in out

    def test_simulate_command(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "simulated run time" in out

    def test_simulate_numeric_small(self, capsys):
        assert main(["simulate", "--machine", "pentium3", "--px", "2", "--py", "2",
                     "--deck", "mini", "--iterations", "2", "--numeric"]) == 0
        out = capsys.readouterr().out
        assert "flux error" in out

    def test_table_command_prediction_only(self, capsys):
        assert main(["table2", "--max-pes", "6", "--iterations", "2",
                     "--no-measurement"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "100x100x50" in out

    def test_table_command_with_measurement(self, capsys):
        assert main(["table2", "--max-pes", "4", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "Error(%)" in out

    def test_figure_command(self, capsys):
        assert main(["figure8", "--max-processors", "16"]) == 0
        out = capsys.readouterr().out
        assert "twenty million cell" in out
        assert "340 MFLOPS" in out

    def test_ablation_command(self, capsys):
        assert main(["ablation", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "legacy" in out

    def test_hmcl_command(self, capsys):
        assert main(["hmcl", "--machine", "altix"]) == 0
        out = capsys.readouterr().out
        assert "hardware altix-itanium2" in out
        assert "mpi" in out

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_machine_raises(self):
        from repro.errors import MachineNotFoundError
        with pytest.raises(MachineNotFoundError):
            main(["predict", "--machine", "cray-xmp"])
