"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize("exc_class", [
        errors.ModelError, errors.PslError, errors.PslSyntaxError,
        errors.PslNameError, errors.PslEvaluationError, errors.HmclError,
        errors.HmclSyntaxError, errors.HmclLookupError, errors.CappError,
        errors.CappSyntaxError, errors.EvaluationError, errors.SimulationError,
        errors.DeadlockError, errors.CommunicatorError, errors.NetworkConfigError,
        errors.ProcessorConfigError, errors.Sweep3DError, errors.InputDeckError,
        errors.DecompositionError, errors.ConvergenceError, errors.ExperimentError,
        errors.MachineNotFoundError,
    ])
    def test_all_derive_from_repro_error(self, exc_class):
        assert issubclass(exc_class, errors.ReproError)

    def test_psl_errors_are_model_errors(self):
        assert issubclass(errors.PslSyntaxError, errors.ModelError)
        assert issubclass(errors.HmclSyntaxError, errors.ModelError)
        assert issubclass(errors.CappSyntaxError, errors.ModelError)

    def test_deadlock_is_simulation_error(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)


class TestPslSyntaxError:
    def test_location_formatting(self):
        exc = errors.PslSyntaxError("bad token", line=12, column=5, filename="model.psl")
        assert "model.psl:12:5" in str(exc)
        assert exc.line == 12
        assert exc.column == 5

    def test_without_location(self):
        exc = errors.PslSyntaxError("bad token")
        assert str(exc) == "bad token"

    def test_line_only(self):
        exc = errors.PslSyntaxError("oops", line=3)
        assert "3" in str(exc)


class TestDeadlockError:
    def test_blocked_ranks_recorded(self):
        exc = errors.DeadlockError("stuck", blocked_ranks=[1, 3])
        assert exc.blocked_ranks == [1, 3]

    def test_default_blocked_ranks(self):
        assert errors.DeadlockError("stuck").blocked_ranks == []


class TestRankFailureError:
    def test_wraps_original(self):
        original = ValueError("boom")
        exc = errors.RankFailureError(4, original)
        assert exc.rank == 4
        assert exc.original is original
        assert "rank 4" in str(exc)
