"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import units
from repro.core.clc import ALL_MNEMONICS, ClcVector
from repro.core.hmcl.model import CpuCostModel
from repro.core.hmcl.parser import format_hmcl, parse_hmcl
from repro.core.templates import PipelineStrategy
from repro.core.templates.base import StageSpec, StageStep
from repro.profiling.curvefit import fit_piecewise_linear
from repro.simmpi.cart import Cart2D
from repro.simproc.opcodes import OpCategory, OperationMix
from repro.sweep3d.input import Sweep3DInput
from repro.sweep3d.quadrature import LevelSymmetricQuadrature

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

counts = st.dictionaries(
    st.sampled_from(list(OpCategory)),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=len(list(OpCategory)),
)

clc_counts = st.dictionaries(
    st.sampled_from(list(ALL_MNEMONICS)),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
    max_size=len(ALL_MNEMONICS),
)

scales = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)


# ---------------------------------------------------------------------------
# OperationMix / ClcVector algebra
# ---------------------------------------------------------------------------


class TestOperationMixProperties:
    @given(counts, counts)
    def test_addition_is_commutative(self, a, b):
        left = OperationMix(dict(a)) + OperationMix(dict(b))
        right = OperationMix(dict(b)) + OperationMix(dict(a))
        assert left.counts == pytest.approx(right.counts)

    @given(counts, scales)
    def test_scaling_scales_flops(self, a, factor):
        mix = OperationMix(dict(a))
        assert (mix * factor).flops == pytest.approx(mix.flops * factor, rel=1e-9, abs=1e-9)

    @given(counts)
    def test_flops_never_exceed_total(self, a):
        mix = OperationMix(dict(a))
        assert mix.flops <= mix.total_operations + 1e-9

    @given(counts, counts)
    def test_addition_adds_totals(self, a, b):
        total = OperationMix(dict(a)) + OperationMix(dict(b))
        assert total.total_operations == pytest.approx(
            OperationMix(dict(a)).total_operations + OperationMix(dict(b)).total_operations)


class TestClcVectorProperties:
    @given(clc_counts, clc_counts)
    def test_addition_matches_manual_sum(self, a, b):
        combined = ClcVector(dict(a)) + ClcVector(dict(b))
        for mnemonic in ALL_MNEMONICS:
            expected = a.get(mnemonic, 0.0) + b.get(mnemonic, 0.0)
            assert combined.count(mnemonic) == pytest.approx(expected)

    @given(clc_counts, scales)
    def test_scaling_distributes(self, a, factor):
        clc = ClcVector(dict(a))
        assert (clc * factor).total == pytest.approx(clc.total * factor, rel=1e-9, abs=1e-6)

    @given(clc_counts)
    def test_operation_mix_roundtrip(self, a):
        clc = ClcVector(dict(a))
        assert ClcVector.from_operation_mix(clc.to_operation_mix()) == clc

    @given(clc_counts, st.floats(min_value=1e3, max_value=1e12))
    def test_cpu_cost_model_linear_in_counts(self, a, rate):
        cpu = CpuCostModel.from_achieved_rate(rate)
        clc = ClcVector(dict(a))
        assert cpu.evaluate(clc * 2) == pytest.approx(2 * cpu.evaluate(clc), rel=1e-9)
        assert cpu.evaluate(clc) == pytest.approx(clc.flops / rate, rel=1e-9)


# ---------------------------------------------------------------------------
# Cart2D
# ---------------------------------------------------------------------------


class TestCartProperties:
    @given(st.integers(min_value=1, max_value=40), st.integers(min_value=1, max_value=40))
    def test_rank_coordinate_bijection(self, px, py):
        cart = Cart2D(px, py)
        seen = set()
        for rank in range(cart.size):
            coords = cart.coords(rank)
            assert cart.rank(*coords) == rank
            seen.add(coords)
        assert len(seen) == cart.size

    @given(st.integers(min_value=1, max_value=2000))
    def test_for_size_preserves_total(self, nranks):
        cart = Cart2D.for_size(nranks)
        assert cart.size == nranks
        assert cart.px <= cart.py

    @given(st.integers(min_value=2, max_value=20), st.integers(min_value=2, max_value=20),
           st.sampled_from([-1, 1]), st.sampled_from([-1, 1]))
    def test_sweep_depth_bounds(self, px, py, idir, jdir):
        cart = Cart2D(px, py)
        depths = [cart.sweep_depth(rank, idir, jdir) for rank in range(cart.size)]
        assert min(depths) == 0
        assert max(depths) == px + py - 2


# ---------------------------------------------------------------------------
# Quadrature and input decks
# ---------------------------------------------------------------------------


class TestQuadratureProperties:
    @given(st.sampled_from([2, 4, 6, 8]), st.integers(min_value=1, max_value=12))
    def test_angle_blocks_partition(self, sn, mmi):
        quad = LevelSymmetricQuadrature(sn)
        blocks = quad.angle_blocks(mmi)
        assert sum(b.n_angles for b in blocks) == quad.angles_per_octant
        assert len(blocks) == quad.n_angle_blocks(mmi)
        assert all(b.n_angles <= mmi for b in blocks)

    @given(st.sampled_from([2, 4, 6, 8]))
    def test_first_moment(self, sn):
        """Level-symmetric sets integrate the half-range current consistently."""
        octant = LevelSymmetricQuadrature(sn).octant_angles()
        half_range_current = 8 * float(np.sum(octant.weight * octant.mu)) / 2.0
        assert 0.2 < half_range_current < 0.35


class TestInputDeckProperties:
    @given(st.integers(min_value=1, max_value=200), st.integers(min_value=1, max_value=50))
    def test_k_block_count(self, kt, mk):
        deck = Sweep3DInput(it=4, jt=4, kt=kt, mk=mk)
        assert deck.n_k_blocks == math.ceil(kt / mk)
        assert deck.n_k_blocks * mk >= kt

    @given(st.integers(min_value=1, max_value=20), st.integers(min_value=1, max_value=20))
    def test_weak_scaling_total_cells(self, px, py):
        deck = Sweep3DInput.weak_scaled((5, 5, 10), px, py)
        assert deck.total_cells == 5 * 5 * 10 * px * py


# ---------------------------------------------------------------------------
# Piece-wise linear fitting
# ---------------------------------------------------------------------------


class TestCurveFitProperties:
    @given(st.floats(min_value=1e-7, max_value=1e-4),
           st.floats(min_value=1e-10, max_value=1e-8),
           st.floats(min_value=1e-6, max_value=1e-3),
           st.floats(min_value=1e-10, max_value=1e-8))
    @settings(max_examples=25, deadline=None)
    def test_fit_reproduces_piecewise_data(self, b, c, d, e):
        breakpoint_bytes = 8192.0
        d = max(d, b + c * breakpoint_bytes)   # keep the curve non-decreasing
        sizes = np.array([64, 256, 1024, 4096, 8192, 16384, 65536, 262144], dtype=float)
        times = np.where(sizes <= breakpoint_bytes, b + c * sizes, d + e * sizes)
        model = fit_piecewise_linear(sizes, times)
        predictions = model.evaluate_many(sizes)
        assert np.max(np.abs(predictions - times) / times) < 0.05


# ---------------------------------------------------------------------------
# HMCL round trip
# ---------------------------------------------------------------------------


class TestHmclRoundTripProperties:
    @given(mflops=st.floats(min_value=1.0, max_value=2000.0))
    @settings(max_examples=25, deadline=None)
    def test_cpu_rate_roundtrip(self, synthetic_hardware, mflops):
        hardware = synthetic_hardware.with_flop_rate(mflops * units.MFLOPS)
        parsed = parse_hmcl(format_hmcl(hardware))
        assert parsed.cpu.achieved_mflops == pytest.approx(mflops, rel=1e-4)


# ---------------------------------------------------------------------------
# Pipeline template invariants
# ---------------------------------------------------------------------------


def _stage(work: float, nbytes: float) -> StageSpec:
    return StageSpec(steps=[
        StageStep("mpirecv", {"direction": "ew", "bytes": nbytes}),
        StageStep("mpirecv", {"direction": "ns", "bytes": nbytes}),
        StageStep("cpu", {"time": work}),
        StageStep("mpisend", {"direction": "ew", "bytes": nbytes}),
        StageStep("mpisend", {"direction": "ns", "bytes": nbytes}),
    ])


class TestPipelineProperties:
    @given(npe_i=st.integers(min_value=1, max_value=6),
           npe_j=st.integers(min_value=1, max_value=6),
           kb=st.integers(min_value=1, max_value=4),
           ab=st.integers(min_value=1, max_value=3),
           work=st.floats(min_value=1e-6, max_value=1e-2))
    @settings(max_examples=30, deadline=None)
    def test_time_at_least_compute_and_at_most_serialised(self, synthetic_hardware,
                                                          npe_i, npe_j, kb, ab, work):
        """The wavefront time is bounded below by one rank's work and above by
        a fully serialised execution over the longest pipeline path."""
        variables = {"npe_i": npe_i, "npe_j": npe_j, "n_k_blocks": kb,
                     "n_angle_blocks": ab, "ew_bytes": 4000.0, "ns_bytes": 4000.0,
                     "work": work}
        stage = _stage(work, 4000.0)
        result = PipelineStrategy().evaluate(variables, stage, synthetic_hardware)
        blocks = 8 * kb * ab
        per_stage_overhead = (
            synthetic_hardware.mpi.recv_cost(4000.0) + synthetic_hardware.mpi.send_cost(4000.0)
            + synthetic_hardware.mpi.delivery_cost(4000.0)) * 2
        lower = blocks * work * (1.0 - 1e-9)
        upper = (blocks + 2 * (npe_i + npe_j)) * (work + per_stage_overhead) * (
            1 + npe_i + npe_j)
        assert lower <= result.time <= upper

    @given(npe_i=st.integers(min_value=1, max_value=5),
           npe_j=st.integers(min_value=1, max_value=5),
           work=st.floats(min_value=1e-6, max_value=1e-3))
    @settings(max_examples=20, deadline=None)
    def test_vectorised_equals_reference(self, synthetic_hardware, npe_i, npe_j, work):
        variables = {"npe_i": npe_i, "npe_j": npe_j, "n_k_blocks": 2,
                     "n_angle_blocks": 1, "ew_bytes": 2000.0, "ns_bytes": 2000.0,
                     "work": work}
        stage = _stage(work, 2000.0)
        strategy = PipelineStrategy()
        fast = strategy.evaluate(variables, stage, synthetic_hardware).time
        slow = strategy.reference_evaluate(variables, stage, synthetic_hardware).time
        assert fast == pytest.approx(slow, rel=1e-10)

    @given(npe_i=st.integers(min_value=1, max_value=8),
           npe_j=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_monotone_in_array_size(self, synthetic_hardware, npe_i, npe_j):
        """Adding a processor row/column never shortens the wavefront."""
        def evaluate(pi, pj):
            variables = {"npe_i": pi, "npe_j": pj, "n_k_blocks": 2,
                         "n_angle_blocks": 2, "ew_bytes": 2000.0, "ns_bytes": 2000.0,
                         "work": 1e-4}
            return PipelineStrategy().evaluate(variables, _stage(1e-4, 2000.0),
                                               synthetic_hardware).time
        base = evaluate(npe_i, npe_j)
        assert evaluate(npe_i + 1, npe_j) >= base - 1e-15
        assert evaluate(npe_i, npe_j + 1) >= base - 1e-15


# ---------------------------------------------------------------------------
# Trace replay == ClusterEngine, bit for bit
# ---------------------------------------------------------------------------


class TestTraceReplayProperties:
    """For random small decks/grids, max-plus trace replay reproduces the
    discrete-event engine exactly — elapsed time, per-rank timing
    breakdowns and message statistics — including noisy runs at equal
    seeds (both the vectorised jitter-only noise path and the scalar
    daemon fallback)."""

    @staticmethod
    def _simulation_key(sim):
        return (sim.elapsed_time,
                tuple((r.finish_time, r.compute_time, r.comm_time,
                       r.messages_sent, r.bytes_sent, r.messages_received,
                       r.bytes_received) for r in sim.ranks),
                sim.traffic.messages, sim.traffic.bytes,
                sim.traffic.intra_node_messages,
                sim.traffic.inter_node_messages,
                tuple(sorted(sim.traffic.by_tag.items())))

    @given(px=st.integers(min_value=1, max_value=3),
           py=st.integers(min_value=1, max_value=3),
           nx=st.integers(min_value=1, max_value=4),
           ny=st.integers(min_value=1, max_value=4),
           kt=st.integers(min_value=1, max_value=8),
           mk=st.integers(min_value=1, max_value=4),
           mmi=st.integers(min_value=1, max_value=3),
           iterations=st.integers(min_value=1, max_value=2),
           seed=st.integers(min_value=0, max_value=2**31 - 1),
           daemon=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_replay_is_bit_identical_to_engine(self, px, py, nx, ny, kt, mk,
                                               mmi, iterations, seed, daemon):
        from repro.machines.presets import get_machine
        from repro.simnet.noise import NoiseModel
        from repro.sweep3d.input import Sweep3DInput

        machine = get_machine("pentium3-myrinet")
        deck = Sweep3DInput.weak_scaled((nx, ny, kt), px, py, mk=mk, mmi=mmi,
                                        max_iterations=iterations)
        plan = machine.simulation_plan(deck, px, py)

        def noise():
            if daemon:
                return machine.noise_model(seed)       # scalar draw fallback
            return NoiseModel(seed=seed, daemon_interval=0.0)   # vectorised

        deterministic_engine = plan.run(mode="engine")
        deterministic_replay = plan.run(mode="replay")
        assert self._simulation_key(deterministic_replay.simulation) == \
            self._simulation_key(deterministic_engine.simulation)

        noisy_engine = plan.run(noise=noise(), mode="engine")
        noisy_replay = plan.run(noise=noise(), mode="replay")
        assert self._simulation_key(noisy_replay.simulation) == \
            self._simulation_key(noisy_engine.simulation)
        assert noisy_replay.error_history == noisy_engine.error_history
        assert noisy_replay.iterations == noisy_engine.iterations


# ---------------------------------------------------------------------------
# Batched multi-seed replay == sequential single-seed replays, bit for bit
# ---------------------------------------------------------------------------


class TestBatchReplayProperties:
    """For random small decks/grids and noise parameters, one
    ``replay_batch`` pass over S seeds reproduces S sequential single-seed
    replays exactly — per-sample elapsed time and per-rank timing
    breakdowns — with and without daemon noise (and therefore, through
    :class:`TestTraceReplayProperties`, the reference engine too)."""

    @given(px=st.integers(min_value=1, max_value=3),
           py=st.integers(min_value=1, max_value=3),
           nx=st.integers(min_value=1, max_value=4),
           ny=st.integers(min_value=1, max_value=4),
           kt=st.integers(min_value=1, max_value=8),
           mk=st.integers(min_value=1, max_value=4),
           mmi=st.integers(min_value=1, max_value=3),
           iterations=st.integers(min_value=1, max_value=2),
           seed=st.integers(min_value=0, max_value=2**31 - 8),
           samples=st.integers(min_value=1, max_value=5),
           daemon=st.booleans())
    @settings(max_examples=20, deadline=None)
    def test_batch_samples_match_sequential_replays(self, px, py, nx, ny, kt,
                                                    mk, mmi, iterations, seed,
                                                    samples, daemon):
        from repro.machines.presets import get_machine
        from repro.simnet.noise import NoiseModel
        from repro.sweep3d.input import Sweep3DInput

        machine = get_machine("pentium3-myrinet")
        deck = Sweep3DInput.weak_scaled((nx, ny, kt), px, py, mk=mk, mmi=mmi,
                                        max_iterations=iterations)
        plan = machine.simulation_plan(deck, px, py)
        if daemon:
            noise = machine.noise_model(seed)
        else:
            noise = NoiseModel(seed=seed, daemon_interval=0.0)

        sample_set = plan.run(noise=noise, mode="auto", samples=samples)
        assert sample_set.n_samples == samples
        trace = plan.compile_trace()
        for index in range(samples):
            single = trace.replay(noise.reseeded(noise.seed + index))
            batched = sample_set.sample(index).simulation
            assert batched.elapsed_time == single.elapsed_time
            assert sample_set.elapsed_times[index] == single.elapsed_time
            for got, want in zip(batched.ranks, single.ranks):
                assert got.finish_time == want.finish_time
                assert got.compute_time == want.compute_time
                assert got.comm_time == want.comm_time


# ---------------------------------------------------------------------------
# Relative error helper
# ---------------------------------------------------------------------------


class TestErrorProperties:
    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1e-3, max_value=1e3))
    def test_relative_error_sign(self, measured, predicted):
        error = units.relative_error(measured, predicted)
        if predicted > measured:
            assert error < 0
        elif predicted < measured:
            assert error > 0
        else:
            assert error == 0

    @given(st.floats(min_value=1e-3, max_value=1e3))
    def test_exact_prediction_has_zero_error(self, value):
        assert units.relative_error(value, value) == 0.0
