"""Tests for repro.units."""

import math

import pytest

from repro import units


class TestConversions:
    def test_usec(self):
        assert units.usec(5.0) == pytest.approx(5e-6)

    def test_msec(self):
        assert units.msec(2.5) == pytest.approx(2.5e-3)

    def test_mflops(self):
        assert units.mflops(110) == pytest.approx(110e6)

    def test_mbytes_per_s(self):
        assert units.mbytes_per_s(240) == pytest.approx(240e6)

    def test_doubles(self):
        assert units.doubles(100) == 800

    def test_constants_consistent(self):
        assert units.KIB == 1024
        assert units.MIB == 1024 ** 2
        assert units.GIB == 1024 ** 3
        assert units.DOUBLE_BYTES == 8


class TestFormatting:
    def test_format_seconds_seconds(self):
        assert units.format_seconds(12.5) == "12.50 s"

    def test_format_seconds_milliseconds(self):
        assert units.format_seconds(3.2e-3) == "3.20 ms"

    def test_format_seconds_microseconds(self):
        assert units.format_seconds(3.2e-6) == "3.20 us"

    def test_format_seconds_nanoseconds(self):
        assert "ns" in units.format_seconds(5e-9)

    def test_format_seconds_zero(self):
        assert units.format_seconds(0.0) == "0.00 s"

    def test_format_seconds_non_finite(self):
        assert units.format_seconds(math.inf) == "inf"

    def test_format_bytes(self):
        assert units.format_bytes(2048) == "2.00 KiB"
        assert units.format_bytes(3 * 1024 ** 2) == "3.00 MiB"
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(2 * 1024 ** 3) == "2.00 GiB"

    def test_format_rate(self):
        assert units.format_rate(1.5e9) == "1.5 Gop/s"
        assert units.format_rate(110e6) == "110.0 Mop/s"
        assert units.format_rate(99.0) == "99.0 op/s"


class TestRelativeError:
    def test_sign_convention_matches_paper(self):
        # Over-prediction yields a negative error, as in Tables 1 and 2.
        assert units.relative_error(measured=26.54, predicted=28.59) < 0
        # Under-prediction yields a positive error, as in Table 3.
        assert units.relative_error(measured=14.66, predicted=13.95) > 0

    def test_value(self):
        assert units.relative_error(100.0, 90.0) == pytest.approx(10.0)

    def test_zero_measurement_raises(self):
        with pytest.raises(ZeroDivisionError):
            units.relative_error(0.0, 1.0)
